//! E09 — §4.1: cover time under adversarial faults.
//!
//! An adversary reassigns *all* tokens arbitrarily once every `γ·n` rounds.
//! For `γ ≥ 6` the paper argues the `O(n log² n)` cover bound survives with
//! a constant-factor slowdown (each fault's damage dissipates within `5n`
//! rounds by Lemma 4). We compare fault-free cover times against faulty runs
//! for `γ ∈ {6, 8, 12}` under the worst (all-in-one) and benign (random)
//! adversaries.

use rbb_sim::{
    fmt_f64, run_trials_seeded, AdversaryKindSpec, ScenarioSpec, ScheduleSpec, StopSpec,
    StrategySpec, Table,
};
use rbb_stats::Summary;

use crate::common::{header, ExpContext};

/// One row of the E09 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E09Row {
    /// Number of nodes/tokens.
    pub n: usize,
    /// Adversary label ("none" for the control arm).
    pub adversary: String,
    /// Fault period multiplier γ (0 for the control arm).
    pub gamma: u64,
    /// Mean cover time.
    pub mean_cover: f64,
    /// Mean faults injected per run.
    pub mean_faults: f64,
    /// Slowdown vs the fault-free control at the same `n`.
    pub slowdown: f64,
    /// Trials that failed to cover within the cap (expected 0).
    pub timeouts: usize,
}

/// The declarative scenario behind one E09 cell: the FIFO traversal run to
/// coverage, optionally under a `γ·n`-periodic adversary. The control arm
/// (`adversary: None`) replaces the historical never-firing
/// `FaultSchedule::every(u64::MAX / 2)` — the engine stream is untouched
/// either way, so the trajectories coincide.
pub fn spec_for(n: usize, adversary: Option<(AdversaryKindSpec, u64)>) -> ScenarioSpec {
    let nf = n as f64;
    let cap = (400.0 * nf * nf.ln().powi(2)) as u64;
    let mut b = ScenarioSpec::builder(n)
        .name("e09-adversarial")
        .strategy(StrategySpec::Fifo)
        .stop(StopSpec::Covered)
        .horizon_rounds(cap);
    if let Some((kind, gamma)) = adversary {
        b = b.adversary(kind, ScheduleSpec::Gamma { gamma });
    }
    b.build()
}

/// Computes the adversarial cover-time table.
pub fn compute(ctx: &ExpContext, sizes: &[usize], gammas: &[u64], trials: usize) -> Vec<E09Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        // Control arm: no faults.
        let scope = ctx.seeds.scope(&format!("clean-n{n}"));
        let clean: Vec<u64> = run_trials_seeded(scope, trials, |_i, seed| {
            spec_for(n, None)
                .scenario_seeded(seed)
                .expect("valid spec")
                .run()
                .stop_round
                .expect("clean run covers")
        });
        let clean_mean = Summary::from_iter(clean.iter().map(|&x| x as f64)).mean();
        rows.push(E09Row {
            n,
            adversary: "none".to_string(),
            gamma: 0,
            mean_cover: clean_mean,
            mean_faults: 0.0,
            slowdown: 1.0,
            timeouts: 0,
        });

        for &gamma in gammas {
            for adversary in ["all-in-one", "random"] {
                let scope = ctx.seeds.scope(&format!("{adversary}-g{gamma}-n{n}"));
                let kind = if adversary == "all-in-one" {
                    AdversaryKindSpec::AllInOne
                } else {
                    AdversaryKindSpec::Random
                };
                let results: Vec<(Option<u64>, u64)> =
                    run_trials_seeded(scope, trials, |_i, seed| {
                        let outcome = spec_for(n, Some((kind, gamma)))
                            .scenario_seeded(seed)
                            .expect("valid spec")
                            .run();
                        (outcome.stop_round, outcome.faults)
                    });
                let ok: Vec<f64> = results
                    .iter()
                    .filter_map(|(t, _)| t.map(|x| x as f64))
                    .collect();
                let mean = Summary::from_slice(&ok).mean();
                rows.push(E09Row {
                    n,
                    adversary: adversary.to_string(),
                    gamma,
                    mean_cover: mean,
                    mean_faults: results.iter().map(|(_, f)| *f as f64).sum::<f64>()
                        / trials as f64,
                    slowdown: mean / clean_mean,
                    timeouts: results.iter().filter(|(t, _)| t.is_none()).count(),
                });
            }
        }
    }
    rows
}

/// Runs and prints E09.
pub fn run(ctx: &ExpContext) {
    header(
        "e09",
        "cover time under adversarial reassignment faults (§4.1)",
        "faults every γn rounds (γ ≥ 6) cost only a constant-factor slowdown on the O(n log² n) cover time",
    );
    let sizes: Vec<usize> = ctx.pick(vec![128, 256, 512], vec![64, 128]);
    let gammas: Vec<u64> = ctx.pick(vec![6, 8, 12], vec![6]);
    let trials = ctx.pick(10, 3);
    let rows = compute(ctx, &sizes, &gammas, trials);

    let mut table = Table::new([
        "n",
        "adversary",
        "gamma",
        "mean cover",
        "mean faults",
        "slowdown",
        "timeouts",
    ]);
    for r in &rows {
        table.row([
            r.n.to_string(),
            r.adversary.clone(),
            if r.gamma == 0 {
                "-".into()
            } else {
                r.gamma.to_string()
            },
            fmt_f64(r.mean_cover, 0),
            fmt_f64(r.mean_faults, 1),
            fmt_f64(r.slowdown, 2),
            r.timeouts.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\npaper: slowdown bounded by a constant for γ ≥ 6; larger γ → smaller slowdown.");
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_timeouts_and_bounded_slowdown() {
        let ctx = ExpContext::for_tests("e09");
        let rows = compute(&ctx, &[64], &[6], 3);
        for r in &rows {
            assert_eq!(r.timeouts, 0, "{} γ={} timed out", r.adversary, r.gamma);
            assert!(
                r.slowdown < 25.0,
                "{} γ={}: slowdown {}",
                r.adversary,
                r.gamma,
                r.slowdown
            );
        }
    }

    #[test]
    fn control_row_present_per_n() {
        let ctx = ExpContext::for_tests("e09");
        let rows = compute(&ctx, &[64], &[6], 2);
        assert!(rows
            .iter()
            .any(|r| r.adversary == "none" && r.slowdown == 1.0));
    }

    #[test]
    fn faults_are_actually_injected() {
        let ctx = ExpContext::for_tests("e09");
        let rows = compute(&ctx, &[64], &[6], 2);
        let faulty = rows.iter().find(|r| r.adversary == "all-in-one").unwrap();
        assert!(faulty.mean_faults > 0.0, "horizon too short for faults");
    }
}
