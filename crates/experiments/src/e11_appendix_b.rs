//! E11 — Appendix B: arrivals are not negatively associated.
//!
//! For `n = 2` started from `(1,1)`, the arrival counts `X₁, X₂` at bin 0 in
//! rounds 1 and 2 satisfy exactly
//! `P(X₁=0,X₂=0) = 1/8 > P(X₁=0)·P(X₂=0) = 1/4 · 3/8 = 3/32`.
//! We reproduce the numbers twice: exactly (enumeration through the generic
//! kernel) and by Monte Carlo with Wilson confidence intervals.

use rbb_core::config::Config;
use rbb_core::exact::{appendix_b_exact, AppendixB};
use rbb_core::process::LoadProcess;
use rbb_core::rng::Xoshiro256pp;
use rbb_sim::{fmt_f64, run_trials_seeded, Table};
use rbb_stats::wilson_ci;

use crate::common::{header, ExpContext};

/// Monte Carlo estimates of the Appendix-B events.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E11Monte {
    /// Trials run.
    pub trials: usize,
    /// Estimate of `P(X₁=0)`.
    pub p_x1_zero: f64,
    /// Estimate of `P(X₂=0)`.
    pub p_x2_zero: f64,
    /// Estimate of the joint `P(X₁=0, X₂=0)`.
    pub p_joint_zero: f64,
}

/// Simulates two rounds of the `n = 2` process from `(1,1)` and reports the
/// indicator pair (X₁ = 0, X₂ = 0). Arrival counts at bin 0 are recovered
/// from the update rule `arrivals = Q'(0) − max(Q(0) − 1, 0)`.
fn one_trial(seed: u64) -> (bool, bool) {
    let mut p = LoadProcess::new(Config::one_per_bin(2), Xoshiro256pp::seed_from(seed));
    let q0_before = p.config().loads()[0];
    p.step();
    let q0_mid = p.config().loads()[0];
    let x1 = q0_mid - q0_before.saturating_sub(1);
    p.step();
    let x2 = p.config().loads()[0] - q0_mid.saturating_sub(1);
    (x1 == 0, x2 == 0)
}

/// Runs the Monte Carlo estimate.
pub fn compute_monte(ctx: &ExpContext, trials: usize) -> E11Monte {
    let outcomes: Vec<(bool, bool)> =
        run_trials_seeded(ctx.seeds.scope("mc"), trials, |_i, seed| one_trial(seed));
    let c1 = outcomes.iter().filter(|(a, _)| *a).count();
    let c2 = outcomes.iter().filter(|(_, b)| *b).count();
    let cj = outcomes.iter().filter(|(a, b)| *a && *b).count();
    E11Monte {
        trials,
        p_x1_zero: c1 as f64 / trials as f64,
        p_x2_zero: c2 as f64 / trials as f64,
        p_joint_zero: cj as f64 / trials as f64,
    }
}

/// Runs and prints E11.
pub fn run(ctx: &ExpContext) {
    header(
        "e11",
        "the negative-association counterexample (Appendix B)",
        "n=2 from (1,1): P(X1=0,X2=0) = 1/8 > 1/4 · 3/8 = P(X1=0)P(X2=0) — arrivals are positively associated",
    );
    let exact: AppendixB = appendix_b_exact();
    let trials = ctx.pick(1_000_000, 50_000);
    let mc = compute_monte(ctx, trials);

    let mut table = Table::new(["quantity", "paper", "exact kernel", "monte carlo", "95% CI"]);
    let ci = |hits: f64| {
        let c = wilson_ci((hits * trials as f64).round() as u64, trials as u64, 0.95);
        format!("[{}, {}]", fmt_f64(c.lo, 4), fmt_f64(c.hi, 4))
    };
    table.row([
        "P(X1=0)".to_string(),
        "1/4 = 0.2500".to_string(),
        fmt_f64(exact.p_x1_zero, 4),
        fmt_f64(mc.p_x1_zero, 4),
        ci(mc.p_x1_zero),
    ]);
    table.row([
        "P(X2=0)".to_string(),
        "3/8 = 0.3750".to_string(),
        fmt_f64(exact.p_x2_zero, 4),
        fmt_f64(mc.p_x2_zero, 4),
        ci(mc.p_x2_zero),
    ]);
    table.row([
        "P(X1=0,X2=0)".to_string(),
        "1/8 = 0.1250".to_string(),
        fmt_f64(exact.p_joint_zero, 4),
        fmt_f64(mc.p_joint_zero, 4),
        ci(mc.p_joint_zero),
    ]);
    table.row([
        "product".to_string(),
        "3/32 = 0.09375".to_string(),
        fmt_f64(exact.p_x1_zero * exact.p_x2_zero, 5),
        fmt_f64(mc.p_x1_zero * mc.p_x2_zero, 5),
        "-".to_string(),
    ]);
    print!("{}", table.render());
    println!(
        "\njoint > product ⇒ NOT negatively associated (exact: {} > {}).",
        fmt_f64(exact.p_joint_zero, 4),
        fmt_f64(exact.p_x1_zero * exact.p_x2_zero, 5)
    );
    let _ = ctx.sink.write_json("monte", &mc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_paper() {
        let e = appendix_b_exact();
        assert!((e.p_x1_zero - 0.25).abs() < 1e-14);
        assert!((e.p_x2_zero - 0.375).abs() < 1e-14);
        assert!((e.p_joint_zero - 0.125).abs() < 1e-14);
    }

    #[test]
    fn monte_carlo_agrees_with_exact() {
        let ctx = ExpContext::for_tests("e11");
        let mc = compute_monte(&ctx, 100_000);
        assert!((mc.p_x1_zero - 0.25).abs() < 0.01, "{}", mc.p_x1_zero);
        assert!((mc.p_x2_zero - 0.375).abs() < 0.01, "{}", mc.p_x2_zero);
        assert!(
            (mc.p_joint_zero - 0.125).abs() < 0.01,
            "{}",
            mc.p_joint_zero
        );
        // The violation itself.
        assert!(mc.p_joint_zero > mc.p_x1_zero * mc.p_x2_zero);
    }
}
