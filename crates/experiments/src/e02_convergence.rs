//! E02 — Theorem 1(b): O(n) convergence from any configuration.
//!
//! From worst-case starts (all balls in one bin, packed-in-√n-bins,
//! geometric cascade) we measure the first round at which the configuration
//! is legitimate (`M ≤ 4 ln n`), sweep `n`, and fit `rounds = a + b·n`. The
//! paper predicts linear convergence; the all-in-one start gives the natural
//! lower bound `n − O(log n)` since the pile drains one ball per round, so
//! the fitted slope should be ≈ 1 with R² ≈ 1.

use rbb_core::config::{Config, LegitimacyThreshold};
use rbb_core::engine::Engine;
use rbb_core::process::LoadProcess;
use rbb_core::rng::Xoshiro256pp;
use rbb_sim::{fmt_f64, run_trials_seeded, Table};
use rbb_stats::{linear_fit, Summary};

use crate::common::{header, ExpContext};

/// Initial-configuration families for the convergence sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartKind {
    /// All `n` balls in bin 0.
    AllInOne,
    /// Balls packed evenly into `⌈√n⌉` bins.
    PackedSqrt,
    /// Geometric cascade (half the balls in bin 0, a quarter in bin 1, …).
    Geometric,
}

impl StartKind {
    /// All families.
    pub const ALL: [StartKind; 3] = [
        StartKind::AllInOne,
        StartKind::PackedSqrt,
        StartKind::Geometric,
    ];

    /// Builds the configuration.
    pub fn build(&self, n: usize) -> Config {
        match self {
            StartKind::AllInOne => Config::all_in_one(n, n as u32),
            StartKind::PackedSqrt => Config::packed(n, n as u32, (n as f64).sqrt().ceil() as usize),
            StartKind::Geometric => Config::geometric_cascade(n, n as u32),
        }
    }

    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            StartKind::AllInOne => "all-in-one",
            StartKind::PackedSqrt => "packed-sqrt",
            StartKind::Geometric => "geometric",
        }
    }
}

/// One row of the E02 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E02Row {
    /// Number of bins/balls.
    pub n: usize,
    /// Start family label.
    pub start: String,
    /// Mean convergence round over trials.
    pub mean_rounds: f64,
    /// Worst convergence round.
    pub max_rounds: u64,
    /// `mean_rounds / n` — should be ≤ a small constant.
    pub rounds_over_n: f64,
    /// Trials that failed to converge within the 20n cap (expected 0).
    pub timeouts: usize,
}

/// Computes the convergence table.
pub fn compute(
    ctx: &ExpContext,
    sizes: &[usize],
    starts: &[StartKind],
    trials: usize,
) -> Vec<E02Row> {
    let thr = LegitimacyThreshold::default();
    let mut rows = Vec::new();
    for &start in starts {
        for &n in sizes {
            let scope = ctx.seeds.scope(&format!("{}-n{n}", start.label()));
            let results: Vec<Option<u64>> = run_trials_seeded(scope, trials, |_i, seed| {
                let mut p = LoadProcess::new(start.build(n), Xoshiro256pp::seed_from(seed));
                p.run_until(20 * n as u64, |c| thr.is_legitimate(c))
            });
            let ok: Vec<f64> = results.iter().flatten().map(|&t| t as f64).collect();
            let timeouts = results.iter().filter(|r| r.is_none()).count();
            let s = Summary::from_slice(&ok);
            rows.push(E02Row {
                n,
                start: start.label().to_string(),
                mean_rounds: s.mean(),
                max_rounds: if ok.is_empty() { 0 } else { s.max() as u64 },
                rounds_over_n: s.mean() / n as f64,
                timeouts,
            });
        }
    }
    rows
}

/// Runs and prints E02.
pub fn run(ctx: &ExpContext) {
    header(
        "e02",
        "linear-time convergence (Theorem 1(b))",
        "from ANY configuration, a legitimate configuration is reached within O(n) rounds w.h.p.",
    );
    let sizes: Vec<usize> = ctx.pick(
        vec![256, 512, 1024, 2048, 4096, 8192, 16384],
        vec![128, 256, 512],
    );
    let trials = ctx.pick(20, 3);
    let rows = compute(ctx, &sizes, &StartKind::ALL, trials);

    let mut table = Table::new(["start", "n", "mean rounds", "worst", "rounds/n", "timeouts"]);
    for r in &rows {
        table.row([
            r.start.clone(),
            r.n.to_string(),
            fmt_f64(r.mean_rounds, 1),
            r.max_rounds.to_string(),
            fmt_f64(r.rounds_over_n, 3),
            r.timeouts.to_string(),
        ]);
    }
    print!("{}", table.render());

    // Linear fit on the worst start family.
    let aio: Vec<&E02Row> = rows.iter().filter(|r| r.start == "all-in-one").collect();
    if aio.len() >= 3 {
        let xs: Vec<f64> = aio.iter().map(|r| r.n as f64).collect();
        let ys: Vec<f64> = aio.iter().map(|r| r.mean_rounds).collect();
        let fit = linear_fit(&xs, &ys);
        println!(
            "\nlinear fit (all-in-one): rounds ≈ {} + {}·n   (R² = {})",
            fmt_f64(fit.intercept, 1),
            fmt_f64(fit.slope, 3),
            fmt_f64(fit.r_squared, 5)
        );
        println!("paper: O(n) convergence; the drain lower bound forces slope ≥ 1 − o(1).");
    }
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_starts_converge_quickly() {
        let ctx = ExpContext::for_tests("e02");
        let rows = compute(&ctx, &[128, 256], &StartKind::ALL, 3);
        for r in &rows {
            assert_eq!(r.timeouts, 0, "{} n={} timed out", r.start, r.n);
            assert!(
                r.rounds_over_n < 3.0,
                "{} n={}: {}",
                r.start,
                r.n,
                r.rounds_over_n
            );
        }
    }

    #[test]
    fn all_in_one_is_slowest_family() {
        let ctx = ExpContext::for_tests("e02");
        let rows = compute(&ctx, &[256], &StartKind::ALL, 3);
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.start == label)
                .map(|r| r.mean_rounds)
                .unwrap()
        };
        assert!(get("all-in-one") >= get("geometric"));
    }

    #[test]
    fn start_kinds_build_valid_configs() {
        for k in StartKind::ALL {
            let c = k.build(100);
            assert_eq!(c.total_balls(), 100, "{}", k.label());
        }
    }

    #[test]
    fn all_in_one_needs_nearly_n_rounds() {
        let ctx = ExpContext::for_tests("e02");
        let rows = compute(&ctx, &[256], &[StartKind::AllInOne], 3);
        // Drain lower bound: at least n - 4 ln n rounds.
        assert!(rows[0].mean_rounds >= 256.0 - 4.0 * 256f64.ln() - 1.0);
    }
}
