//! E14 — the repeated `d`-choice variant (\[36\], Czumaj & Stemann).
//!
//! Re-assigning each ball to the least loaded of `d` uniformly chosen bins
//! (`d = 1` is exactly the paper's process). The power-of-two-choices effect
//! collapses the max load; we sweep `n` for `d ∈ {1, 2, 3}` and report
//! window max loads side by side, plus the empirical probability of ever
//! exceeding the `4 ln n` legitimacy bound with its Wilson upper bound —
//! zero for every `d` at these sizes, and collapsing margins for `d ≥ 2`.
//!
//! Each `(d, n)` cell runs as a declarative [`EnsembleSpec`] whose
//! `master_seed` is the cell's scoped seed-tree master, preserving the
//! pre-ensemble trial seeds bit for bit.

use rbb_core::config::LegitimacyThreshold;
use rbb_sim::{fmt_f64, ArrivalSpec, EnsembleSpec, MetricKind, MetricSpec, ScenarioSpec, Table};

use crate::common::{header, ExpContext};

/// One row of the E14 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E14Row {
    /// Number of bins.
    pub n: usize,
    /// Choices per re-assignment.
    pub d: usize,
    /// Mean window max.
    pub mean_window_max: f64,
    /// `mean / ln n` (d = 1) — flat constant.
    pub ratio_to_ln_n: f64,
    /// `mean / ln ln n` (d ≥ 2 reference scale).
    pub ratio_to_ln_ln_n: f64,
    /// Empirical `P(window max >= 4 ln n bound)`.
    pub p_exceed_bound: f64,
    /// Wilson 95% upper bound on that tail probability.
    pub p_exceed_hi: f64,
}

/// The declarative scenario behind one E14 cell: `d`-choice re-assignment
/// from the legitimate start over a `100·n` window.
pub fn spec_for(n: usize, d: usize) -> ScenarioSpec {
    ScenarioSpec::builder(n)
        .name("e14-dchoice")
        .arrival(ArrivalSpec::DChoice { d })
        .horizon_factor(100)
        .build()
}

/// The declarative ensemble behind one E14 cell.
pub fn ensemble_for(ctx: &ExpContext, n: usize, d: usize, trials: usize) -> EnsembleSpec {
    let bound = LegitimacyThreshold::default().bound(n);
    EnsembleSpec::new(
        spec_for(n, d),
        ctx.seeds.scope(&format!("d{d}-n{n}")).master(),
        trials,
    )
    .with_metrics(vec![MetricSpec::with_thresholds(
        MetricKind::WindowMaxLoad,
        vec![bound as f64],
    )])
}

/// Computes the d-choice table: one streaming ensemble per `(d, n)` cell,
/// with the seeds derived as before the ensemble migration.
pub fn compute(ctx: &ExpContext, sizes: &[usize], ds: &[usize], trials: usize) -> Vec<E14Row> {
    let thr = LegitimacyThreshold::default();
    ds.iter()
        .flat_map(|&d| sizes.iter().map(move |&n| (d, n)))
        .map(|(d, n)| {
            let report = ensemble_for(ctx, n, d, trials)
                .run()
                .expect("valid ensemble");
            let wml = report
                .metric(MetricKind::WindowMaxLoad)
                .expect("requested metric");
            let tail = wml.tail_at(thr.bound(n) as f64).expect("requested tail");
            let nf = n as f64;
            E14Row {
                n,
                d,
                mean_window_max: wml.mean,
                ratio_to_ln_n: wml.mean / nf.ln(),
                ratio_to_ln_ln_n: wml.mean / nf.ln().ln(),
                p_exceed_bound: tail.probability,
                p_exceed_hi: tail.wilson.hi,
            }
        })
        .collect()
}

/// Runs and prints E14.
pub fn run(ctx: &ExpContext) {
    header(
        "e14",
        "repeated d-choice re-assignment ([36])",
        "d = 1 is the paper's process (Θ(log n)); d ≥ 2 collapses the max load (power of two choices)",
    );
    let sizes: Vec<usize> = ctx.pick(vec![256, 1024, 4096], vec![128, 256]);
    let ds = ctx.pick(vec![1, 2, 3], vec![1, 2]);
    let trials = ctx.pick(10, 3);
    let rows = compute(ctx, &sizes, &ds, trials);

    let mut table = Table::new([
        "d",
        "n",
        "mean window max",
        "mean/ln n",
        "mean/ln ln n",
        "P(≥ 4 ln n)",
        "wilson hi",
    ]);
    for r in &rows {
        table.row([
            r.d.to_string(),
            r.n.to_string(),
            fmt_f64(r.mean_window_max, 2),
            fmt_f64(r.ratio_to_ln_n, 3),
            fmt_f64(r.ratio_to_ln_ln_n, 2),
            fmt_f64(r.p_exceed_bound, 3),
            fmt_f64(r.p_exceed_hi, 3),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nd=1: mean/ln n flat (the paper's bound). d≥2: max load nearly flat in n — \
         the ln n column shrinks while the ln ln n column stays ~constant."
    );
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbb_core::metrics::ObserverStack;
    use rbb_sim::sweep_par_seeded;

    #[test]
    fn d2_below_d1_at_same_n() {
        let ctx = ExpContext::for_tests("e14");
        let rows = compute(&ctx, &[512], &[1, 2], 3);
        let d1 = rows.iter().find(|r| r.d == 1).unwrap();
        let d2 = rows.iter().find(|r| r.d == 2).unwrap();
        assert!(d2.mean_window_max < d1.mean_window_max);
        assert_eq!(d2.p_exceed_bound, 0.0);
    }

    #[test]
    fn d1_ratio_is_bounded() {
        let ctx = ExpContext::for_tests("e14");
        let rows = compute(&ctx, &[256], &[1], 3);
        assert!(rows[0].ratio_to_ln_n < 4.0);
        assert!(rows[0].p_exceed_hi <= 1.0);
    }

    /// The migration contract: per-cell ensembles reproduce the historical
    /// flattened (d × n × trial) sweep bit for bit.
    #[test]
    fn ensemble_matches_historical_sweep() {
        let ctx = ExpContext::for_tests("e14");
        let (sizes, ds, trials) = ([128usize], [1usize, 2], 2);
        let rows = compute(&ctx, &sizes, &ds, trials);

        let params: Vec<(usize, usize)> = ds
            .iter()
            .flat_map(|&d| sizes.iter().map(move |&n| (d, n)))
            .collect();
        let grid = sweep_par_seeded(
            ctx.seeds,
            &params,
            trials,
            |&(d, n)| format!("d{d}-n{n}"),
            |&(d, n), _i, seed| {
                let mut scenario = spec_for(n, d).scenario_seeded(seed).expect("valid spec");
                let mut stack = ObserverStack::new().with_max_load();
                scenario.run_observed(&mut stack);
                stack.max_load.expect("enabled").window_max()
            },
        );
        for (row, ((d, n), maxes)) in rows.iter().zip(grid) {
            assert_eq!((row.d, row.n), (d, n));
            let s = rbb_stats::Summary::from_iter(maxes.iter().map(|&m| m as f64));
            assert_eq!(row.mean_window_max, s.mean(), "d = {d}, n = {n}");
        }
    }
}
