//! E19 — the closed Jackson network comparator (\[30\]).
//!
//! The sequential continuous-time cousin of the paper's process: exponential
//! unit-rate servers, uniform routing, `n` customers on `n` stations. Its
//! stationary law is product-form (classical queueing theory); the paper's
//! parallel chain is not. We compare stationary max-load statistics —
//! both sit at the `Θ(log)` scale, showing the parallel correlation does not
//! change the order of congestion, only the analysis difficulty.

use rbb_baselines::JacksonNetwork;
use rbb_core::engine::Engine;
use rbb_core::metrics::MaxLoadTracker;
use rbb_core::process::LoadProcess;
use rbb_sim::{fmt_f64, run_trials_seeded, Table};
use rbb_stats::Summary;

use crate::common::{header, ExpContext};

/// One row of the E19 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E19Row {
    /// Number of stations/customers.
    pub n: usize,
    /// Jackson: event-averaged mean max load at stationarity.
    pub jackson_mean_max: f64,
    /// Jackson: 95th percentile of the max load.
    pub jackson_p95_max: usize,
    /// Repeated process: mean per-round max at equilibrium.
    pub repeated_mean_max: f64,
    /// Ratio repeated/jackson.
    pub ratio: f64,
}

/// Computes the Jackson comparison.
pub fn compute(ctx: &ExpContext, sizes: &[usize], trials: usize) -> Vec<E19Row> {
    sizes
        .iter()
        .map(|&n| {
            let scope = ctx.seeds.scope(&format!("jackson-n{n}"));
            let jackson: Vec<(f64, usize)> = run_trials_seeded(scope, trials, |_i, seed| {
                let mut j = JacksonNetwork::legitimate_start(n, seed);
                for _ in 0..(20 * n as u64) {
                    j.step(); // burn-in
                }
                let hist = j.run_events(100 * n as u64);
                (hist.mean(), hist.quantile(0.95).unwrap_or(0))
            });
            let scope = ctx.seeds.scope(&format!("repeated-n{n}"));
            let repeated: Vec<f64> = run_trials_seeded(scope, trials, |_i, seed| {
                let mut p = LoadProcess::legitimate_start(n, seed);
                p.run_silent(4 * n as u64);
                let mut t = MaxLoadTracker::new();
                p.run(100 * n as u64, &mut t);
                t.mean_round_max()
            });
            let jm = Summary::from_iter(jackson.iter().map(|j| j.0)).mean();
            let jp95 = jackson.iter().map(|j| j.1).max().unwrap_or(0);
            let rm = Summary::from_slice(&repeated).mean();
            E19Row {
                n,
                jackson_mean_max: jm,
                jackson_p95_max: jp95,
                repeated_mean_max: rm,
                ratio: rm / jm,
            }
        })
        .collect()
}

/// Runs and prints E19.
pub fn run(ctx: &ExpContext) {
    header(
        "e19",
        "closed Jackson network vs the parallel process ([30])",
        "the sequential product-form model has the same Θ(log)-scale max load; the delta is analytic, not quantitative",
    );
    let sizes: Vec<usize> = ctx.pick(vec![256, 1024, 4096], vec![128, 256]);
    let trials = ctx.pick(5, 2);
    let rows = compute(ctx, &sizes, trials);

    let mut table = Table::new([
        "n",
        "jackson mean max",
        "jackson p95 max",
        "repeated mean round max",
        "repeated/jackson",
    ]);
    for r in &rows {
        table.row([
            r.n.to_string(),
            fmt_f64(r.jackson_mean_max, 2),
            r.jackson_p95_max.to_string(),
            fmt_f64(r.repeated_mean_max, 2),
            fmt_f64(r.ratio, 2),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nboth models keep max load at the Θ(log n / log log n)-to-Θ(log n) scale; \
         the paper's difficulty is the *parallel* chain's non-product-form stationary law."
    );
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_order_of_magnitude() {
        let ctx = ExpContext::for_tests("e19");
        let rows = compute(&ctx, &[128], 2);
        let r = &rows[0];
        assert!(r.ratio > 0.4 && r.ratio < 2.5, "ratio {}", r.ratio);
    }

    #[test]
    fn jackson_max_is_logarithmic() {
        let ctx = ExpContext::for_tests("e19");
        let rows = compute(&ctx, &[256], 2);
        let bound = 4.0 * 256f64.ln();
        assert!(rows[0].jackson_mean_max < bound);
        assert!(rows[0].jackson_mean_max >= 1.0);
    }
}
