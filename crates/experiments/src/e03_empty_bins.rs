//! E03 — Lemmas 1 & 2: at least `n/4` empty bins, always.
//!
//! After the first round, the number of empty bins stays ≥ `n/4` throughout
//! any polynomial window, w.h.p. (per-round failure probability `e^{-αn}`).
//! We measure the *minimum* empty fraction over the window from both
//! legitimate and adversarial starts. The measured steady state hovers near
//! `0.414` — above `1/e` since backlogged bins release only one ball per
//! round — comfortably above the `0.25` the lemma needs.

use rbb_core::config::Config;
use rbb_core::engine::Engine;
use rbb_core::metrics::EmptyBinsTracker;
use rbb_core::process::LoadProcess;
use rbb_core::rng::Xoshiro256pp;
use rbb_sim::{fmt_f64, run_trials_seeded, Table};
use rbb_stats::{lemma1_alpha, Summary};

use crate::common::{header, ExpContext};

/// One row of the E03 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E03Row {
    /// Number of bins/balls.
    pub n: usize,
    /// Start label.
    pub start: String,
    /// Window length.
    pub window: u64,
    /// Min over (trials × rounds ≥ 2) of the empty-bin fraction.
    pub min_empty_fraction: f64,
    /// Mean empty fraction.
    pub mean_empty_fraction: f64,
    /// Total rounds (across trials) below n/4 — Lemma 2 says ~0.
    pub violations: u64,
    /// The paper's per-round failure bound `e^{-αn}` (analytic).
    pub analytic_round_bound: f64,
}

/// Computes the empty-bins table.
pub fn compute(ctx: &ExpContext, sizes: &[usize], trials: usize) -> Vec<E03Row> {
    let mut rows = Vec::new();
    for &(ref label, build) in &[
        (
            "one-per-bin".to_string(),
            (|n: usize| Config::one_per_bin(n)) as fn(usize) -> Config,
        ),
        (
            "all-in-one".to_string(),
            (|n: usize| Config::all_in_one(n, n as u32)) as fn(usize) -> Config,
        ),
    ] {
        for &n in sizes {
            let window = 100 * n as u64;
            let scope = ctx.seeds.scope(&format!("{label}-n{n}"));
            let per_trial: Vec<(usize, f64, u64)> = run_trials_seeded(scope, trials, |_i, seed| {
                let mut p = LoadProcess::new(build(n), Xoshiro256pp::seed_from(seed));
                // Lemma 2 speaks from round 1 onward for any start; the
                // all-in-one start trivially has many empty bins already.
                let mut t = EmptyBinsTracker::starting_at(2);
                p.run(window, &mut t);
                (t.min_empty(), t.mean_empty(), t.violations_below_quarter())
            });
            let mins = Summary::from_iter(per_trial.iter().map(|x| x.0 as f64 / n as f64));
            let means = Summary::from_iter(per_trial.iter().map(|x| x.1 / n as f64));
            rows.push(E03Row {
                n,
                start: label.clone(),
                window,
                min_empty_fraction: mins.min(),
                mean_empty_fraction: means.mean(),
                violations: per_trial.iter().map(|x| x.2).sum(),
                analytic_round_bound: (-lemma1_alpha(n) * n as f64).exp(),
            });
        }
    }
    rows
}

/// Runs and prints E03.
pub fn run(ctx: &ExpContext) {
    header(
        "e03",
        "empty bins stay above n/4 (Lemmas 1–2)",
        "for every round t ≥ 1 in a poly(n) window, #empty bins ≥ n/4 w.h.p. (failure e^{-αn}/round)",
    );
    let sizes: Vec<usize> = ctx.pick(vec![256, 512, 1024, 2048, 4096], vec![128, 256]);
    let trials = ctx.pick(10, 3);
    let rows = compute(ctx, &sizes, trials);

    let mut table = Table::new([
        "start",
        "n",
        "window",
        "min empty frac",
        "mean empty frac",
        "rounds < n/4",
        "analytic e^-an",
    ]);
    for r in &rows {
        table.row([
            r.start.clone(),
            r.n.to_string(),
            r.window.to_string(),
            fmt_f64(r.min_empty_fraction, 4),
            fmt_f64(r.mean_empty_fraction, 4),
            r.violations.to_string(),
            format!("{:.2e}", r.analytic_round_bound),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\npaper: min fraction ≥ 0.25; measured steady state concentrates near 0.414 — \
         above 1/e because backlogged bins release only one ball per round, so fewer \
         than n balls fly each round."
    );
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_violations_and_quarter_bound_holds() {
        let ctx = ExpContext::for_tests("e03");
        let rows = compute(&ctx, &[256], 3);
        for r in &rows {
            assert_eq!(r.violations, 0, "{} violated Lemma 2", r.start);
            assert!(
                r.min_empty_fraction >= 0.25,
                "{}: {}",
                r.start,
                r.min_empty_fraction
            );
        }
    }

    #[test]
    fn steady_state_near_measured_equilibrium() {
        let ctx = ExpContext::for_tests("e03");
        let rows = compute(&ctx, &[512], 2);
        for r in &rows {
            assert!(
                (r.mean_empty_fraction - 0.414).abs() < 0.03,
                "{}: mean {}",
                r.start,
                r.mean_empty_fraction
            );
        }
    }

    #[test]
    fn covers_both_start_families() {
        let ctx = ExpContext::for_tests("e03");
        let rows = compute(&ctx, &[128], 1);
        let labels: Vec<&str> = rows.iter().map(|r| r.start.as_str()).collect();
        assert!(labels.contains(&"one-per-bin"));
        assert!(labels.contains(&"all-in-one"));
    }
}
