//! E27 — weighted balls under Zipf skew, with capacity-constrained bins
//! and the centralized FFD comparator.
//!
//! The paper's process is defined for unit balls; the weighted regime asks
//! what its *weight-oblivious* dynamics — every bin still releases one
//! ball per round, weights never touch the RNG — buy when balls carry
//! Zipf-distributed sizes `w_k = round(w_max/(k+1)^s)` and bins observe a
//! shared capacity. Two tables:
//!
//! * **Envelope** (`s ∈ {0.5, 1.0, 1.5}`): the ensemble-mean weighted
//!   window max load against the scaled legitimacy bound
//!   `⌈β ln n⌉·⌈W/m⌉` and the heaviest single ball `w_max`. Under skew a
//!   single heavy ball dominates any bin it sits in, so the envelope is
//!   governed by `max(w_max, bound·mean)` — the dynamics spread the
//!   *number* of balls, and the weighted excess above `w_max` stays on the
//!   unit-bound scale.
//! * **FFD packing + churn**: the same weight vectors handed to a
//!   centralized greedy first-fit-decreasing packer with per-bin budget
//!   `max(weighted bound, w_max)`. FFD packs into far fewer bins — that is
//!   what central coordination buys — but under churn (one ball's weight
//!   resampled per event, repack from scratch) it relocates balls it never
//!   touched, while the self-stabilizing process pays one release per bin
//!   per round regardless.
//!
//! Every process cell is a declarative [`EnsembleSpec`] over a spec with
//! `weights: {"kind":"zipf"}` — the same JSON surface the committed
//! `specs/weighted-*.json` scenarios exercise in CI.

use rbb_baselines::binpack::{ffd_bins_used, first_fit_decreasing, rebalancing_cost_under_churn};
use rbb_core::prelude::{LegitimacyThreshold, Xoshiro256pp};
use rbb_core::weights::Weights;
use rbb_sim::{
    fmt_f64, CapacitiesSpec, EnsembleSpec, MetricKind, MetricSpec, ScenarioSpec, WeightsSpec,
};

use crate::common::{header, ExpContext};

/// Heaviest ball weight of the Zipf family (the core default).
pub const W_MAX: u32 = 100;

/// Window length (rounds) of every envelope cell.
const WINDOW: u64 = 1_500;

/// The Zipf skews both tables sweep.
pub const SKEWS: [f64; 3] = [0.5, 1.0, 1.5];

/// One row of the envelope table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E27EnvelopeRow {
    /// Bins (= balls).
    pub n: usize,
    /// Zipf skew.
    pub s: f64,
    /// Total weight `W` of the Zipf vector.
    pub total_weight: u64,
    /// Mean weighted window max load over the ensemble.
    pub mean_weighted_max: f64,
    /// Mean (unit) window max load over the same trajectories.
    pub mean_unit_max: f64,
    /// The scaled legitimacy bound `⌈β ln n⌉·⌈W/m⌉`.
    pub weighted_bound: u64,
    /// Shared per-bin capacity both tables observe.
    pub capacity: u64,
    /// Mean fraction of rounds with at least one capacity violation.
    pub violation_rate: f64,
}

/// One row of the FFD comparison table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E27PackingRow {
    /// Zipf skew.
    pub s: f64,
    /// Per-bin budget handed to FFD (same as the envelope capacity).
    pub capacity: u64,
    /// Bins FFD needs at that budget (the process uses all `n`).
    pub ffd_bins: usize,
    /// Max packed weight in the FFD solution.
    pub ffd_max_load: u64,
    /// Mean balls relocated per churn event by full repacking,
    /// excluding the churned ball itself.
    pub churn_mean_moves: f64,
    /// Worst single-event relocation count.
    pub churn_max_moves: u64,
}

/// The raw Zipf weight vector behind a skew (what FFD packs and the spec
/// layer reconstructs from `{"kind":"zipf"}`).
pub fn zipf_weights(m: u64, s: f64) -> Vec<u32> {
    match Weights::zipf(m, s, W_MAX) {
        Weights::Explicit(v) => v,
        // w_max = 1 collapses to Unit; W_MAX = 100 never takes this arm.
        _ => vec![1; usize::try_from(m).expect("test-scale ball count")],
    }
}

/// Shared per-bin budget: the scaled legitimacy bound, floored at `w_max`
/// so a single heavy ball is packable at all.
pub fn capacity_for(n: usize, total_weight: u64, m: u64) -> u64 {
    LegitimacyThreshold::default()
        .weighted_bound(n, total_weight, m)
        .max(u64::from(W_MAX))
}

/// The declarative scenario behind one envelope cell.
pub fn envelope_spec(n: usize, s: f64, capacity: u64) -> ScenarioSpec {
    ScenarioSpec::builder(n)
        .name("e27-weighted-envelope")
        .weights(WeightsSpec::Zipf {
            s,
            w_max: Some(W_MAX),
        })
        .capacities(CapacitiesSpec::Uniform { c: capacity })
        .horizon_rounds(WINDOW)
        .build()
}

/// Computes the envelope table (one streaming ensemble per skew).
pub fn compute_envelope(ctx: &ExpContext, n: usize, trials: usize) -> Vec<E27EnvelopeRow> {
    SKEWS
        .iter()
        .map(|&s| {
            let m = n as u64;
            let total_weight = Weights::zipf(m, s, W_MAX).total(m);
            let capacity = capacity_for(n, total_weight, m);
            let report = EnsembleSpec::new(
                envelope_spec(n, s, capacity),
                ctx.seeds.scope(&format!("env-s{}", fmt_f64(s, 1))).master(),
                trials,
            )
            .with_metrics(vec![
                MetricSpec::plain(MetricKind::WeightedWindowMaxLoad),
                MetricSpec::plain(MetricKind::WindowMaxLoad),
                MetricSpec::plain(MetricKind::CapacityViolationRate),
            ])
            .run()
            .expect("valid ensemble");
            let get = |k| report.metric(k).expect("requested metric").mean;
            E27EnvelopeRow {
                n,
                s,
                total_weight,
                mean_weighted_max: get(MetricKind::WeightedWindowMaxLoad),
                mean_unit_max: get(MetricKind::WindowMaxLoad),
                weighted_bound: LegitimacyThreshold::default().weighted_bound(n, total_weight, m),
                capacity,
                violation_rate: get(MetricKind::CapacityViolationRate),
            }
        })
        .collect()
}

/// Computes the FFD packing + churn table over the same weight vectors.
pub fn compute_packing(ctx: &ExpContext, n: usize, churn_events: u64) -> Vec<E27PackingRow> {
    SKEWS
        .iter()
        .map(|&s| {
            let m = n as u64;
            let weights = zipf_weights(m, s);
            let total_weight = Weights::zipf(m, s, W_MAX).total(m);
            let capacity = capacity_for(n, total_weight, m);
            let packing =
                first_fit_decreasing(&weights, n, capacity).expect("n bins at cap >= w_max fit");
            let ffd_bins = ffd_bins_used(&weights, capacity).expect("cap >= w_max");
            let mut rng = Xoshiro256pp::seed_from(
                ctx.seeds
                    .scope(&format!("churn-s{}", fmt_f64(s, 1)))
                    .master(),
            );
            let churn =
                rebalancing_cost_under_churn(&weights, n, capacity, W_MAX, churn_events, &mut rng)
                    .expect("repacks stay feasible with n bins at cap >= w_max");
            E27PackingRow {
                s,
                capacity,
                ffd_bins,
                ffd_max_load: packing.max_load(),
                churn_mean_moves: churn.mean_moves(),
                churn_max_moves: churn.max_moves,
            }
        })
        .collect()
}

/// Runs and prints E27.
pub fn run(ctx: &ExpContext) {
    header(
        "e27",
        "weighted Zipf balls and capacity-constrained bins",
        "weight-oblivious dynamics keep the weighted envelope at max(w_max, bound·mean) scale; \
         centralized FFD packs tighter but pays collateral moves on every churn event",
    );
    let n = ctx.pick(1024, 128);
    let trials = ctx.pick(5, 2);
    let churn_events = ctx.pick(2_000, 100);

    let env = compute_envelope(ctx, n, trials);
    println!(
        "envelope: weighted window max over {WINDOW} rounds, one-per-bin start, m = n = {n}\n"
    );
    let mut table = rbb_sim::Table::new([
        "s",
        "W",
        "weighted max",
        "unit max",
        "bound",
        "cap",
        "viol rate",
    ]);
    for r in &env {
        table.row([
            fmt_f64(r.s, 1),
            r.total_weight.to_string(),
            fmt_f64(r.mean_weighted_max, 1),
            fmt_f64(r.mean_unit_max, 1),
            r.weighted_bound.to_string(),
            r.capacity.to_string(),
            fmt_f64(r.violation_rate, 3),
        ]);
    }
    print!("{}", table.render());

    let pack = compute_packing(ctx, n, churn_events);
    println!("\nFFD comparator: same weights, per-bin budget max(bound, w_max), {churn_events} churn events\n");
    let mut table = rbb_sim::Table::new([
        "s",
        "cap",
        "FFD bins",
        "FFD max",
        "churn moves/event",
        "churn max",
    ]);
    for r in &pack {
        table.row([
            fmt_f64(r.s, 1),
            r.capacity.to_string(),
            r.ffd_bins.to_string(),
            r.ffd_max_load.to_string(),
            fmt_f64(r.churn_mean_moves, 2),
            r.churn_max_moves.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nfinding: the process's weighted envelope tracks max(w_max, bound·mean) — heavier \
         skew concentrates mass in the few heavy balls, so the weighted max is pinned near \
         w_max while the unit max stays on the Theorem-1 log-scale. FFD needs only a fraction \
         of the n bins at the same budget, but repacking after one weight change relocates \
         balls it never touched; the decentralized process never pays that coordination cost."
    );
    let _ = ctx.sink.write_json("envelope", &env);
    let _ = ctx.sink.write_json("packing", &pack);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_sits_between_w_max_and_the_capacity_scale() {
        let ctx = ExpContext::for_tests("e27");
        let rows = compute_envelope(&ctx, 128, 2);
        assert_eq!(rows.len(), SKEWS.len());
        for r in &rows {
            // The heaviest ball sits somewhere, so the weighted max can
            // never drop below w_max; obliviousness keeps the excess on
            // the unit-bound scale above it.
            assert!(r.mean_weighted_max >= f64::from(W_MAX), "{r:?}");
            assert!(
                r.mean_weighted_max < f64::from(W_MAX) + r.weighted_bound as f64 * r.mean_unit_max,
                "{r:?}"
            );
            assert!(r.mean_unit_max >= 1.0);
            assert!((0.0..=1.0).contains(&r.violation_rate));
        }
        // Heavier skew concentrates mass: total weight decreases with s.
        assert!(rows[0].total_weight > rows[1].total_weight);
        assert!(rows[1].total_weight > rows[2].total_weight);
    }

    #[test]
    fn ffd_packs_tighter_than_the_process_spreads() {
        let ctx = ExpContext::for_tests("e27");
        let n = 128;
        let rows = compute_packing(&ctx, n, 50);
        for r in &rows {
            assert!(r.ffd_bins < n, "FFD should beat one-bin-per-ball: {r:?}");
            assert!(r.ffd_max_load <= r.capacity);
            assert!(
                r.churn_max_moves >= 1,
                "repacking never moving anything: {r:?}"
            );
        }
    }

    #[test]
    fn packing_and_spec_layer_agree_on_the_weight_vector() {
        // The spec's zipf and the FFD input must be the same vector, or the
        // two tables compare different workloads.
        let m = 64u64;
        for s in SKEWS {
            let from_core = zipf_weights(m, s);
            let spec = envelope_spec(
                64,
                s,
                capacity_for(64, Weights::zipf(m, s, W_MAX).total(m), m),
            );
            let from_spec = spec.weights.as_ref().expect("weighted spec").to_core(m);
            assert_eq!(Weights::Explicit(from_core).normalized(), from_spec);
        }
    }
}
