//! E06 — Lemma 5: the drift chain's absorption tail.
//!
//! The chain `Z_t = Z_{t-1} − 1 + B((3/4)n, 1/n)` (absorbed at 0) satisfies
//! `P_k(τ > t) ≤ e^{−t/144}` for `t ≥ 8k`. We sample absorption times for a
//! sweep of starting states `k` and compare the empirical tail against the
//! Chernoff curve at several multiples of `8k`; the bound is valid but loose
//! (the true decay rate is much faster than 1/144).

use rbb_core::markov::{empirical_tail, lemma5_tail_bound, sample_absorption_times};
use rbb_sim::{fmt_f64, Table};
use rbb_stats::linear_fit;

use crate::common::{header, ExpContext};

/// One row of the E06 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E06Row {
    /// Starting state `k`.
    pub k: u64,
    /// Evaluation time `t` (a multiple of `8k`, so Lemma 5 applies).
    pub t: u64,
    /// Empirical `P_k(τ > t)`.
    pub empirical_tail: f64,
    /// The paper's bound `e^{-t/144}`.
    pub chernoff_bound: f64,
    /// Whether the bound holds.
    pub bound_holds: bool,
}

/// Computes the absorption-tail table. `n` is the bin parameter of the
/// arrival law; the tail is essentially independent of `n` (mean 3/4).
pub fn compute(ctx: &ExpContext, n: usize, ks: &[u64], trials: usize) -> Vec<E06Row> {
    let mut rows = Vec::new();
    for &k in ks {
        let cap = (200 * k).max(4000);
        let times = sample_absorption_times(
            n,
            k,
            trials,
            cap,
            ctx.seeds.scope(&format!("k{k}")).master(),
        );
        for mult in [1u64, 2, 4, 8] {
            let t = 8 * k * mult;
            let emp = empirical_tail(&times, t);
            let bound = lemma5_tail_bound(t);
            rows.push(E06Row {
                k,
                t,
                empirical_tail: emp,
                chernoff_bound: bound,
                bound_holds: emp <= bound + 1e-12,
            });
        }
    }
    rows
}

/// Estimates the empirical decay rate `r` in `P(τ > t) ≈ e^{−r·t}` for
/// start `k = 1` (to compare against the paper's 1/144).
pub fn empirical_decay_rate(ctx: &ExpContext, n: usize, trials: usize) -> f64 {
    let times = sample_absorption_times(n, 1, trials, 10_000, ctx.seeds.scope("decay").master());
    // Fit ln P(τ > t) vs t over the observable range.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for t in 1..=60u64 {
        let p = empirical_tail(&times, t);
        if p > 0.001 {
            xs.push(t as f64);
            ys.push(p.ln());
        }
    }
    if xs.len() < 2 {
        return f64::NAN;
    }
    -linear_fit(&xs, &ys).slope
}

/// Runs and prints E06.
pub fn run(ctx: &ExpContext) {
    header(
        "e06",
        "absorption-time tail of the drift chain (Lemma 5)",
        "P_k(τ > t) ≤ e^{-t/144} for all t ≥ 8k",
    );
    let n = 1024;
    let ks: Vec<u64> = ctx.pick(vec![1, 2, 4, 8, 16, 32], vec![1, 4]);
    let trials = ctx.pick(20_000, 2_000);
    let rows = compute(ctx, n, &ks, trials);

    let mut table = Table::new(["k", "t", "empirical P(tau>t)", "e^-t/144", "bound holds"]);
    for r in &rows {
        table.row([
            r.k.to_string(),
            r.t.to_string(),
            format!("{:.3e}", r.empirical_tail),
            format!("{:.3e}", r.chernoff_bound),
            if r.bound_holds { "yes" } else { "NO" }.to_string(),
        ]);
    }
    print!("{}", table.render());

    let rate = empirical_decay_rate(ctx, n, trials);
    println!(
        "\nempirical decay rate for k=1: {} per round (paper bound uses 1/144 ≈ {})",
        fmt_f64(rate, 4),
        fmt_f64(1.0 / 144.0, 4)
    );
    println!("paper: the Chernoff bound is valid but loose; measured decay is much faster.");
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_at_all_checkpoints() {
        let ctx = ExpContext::for_tests("e06");
        let rows = compute(&ctx, 256, &[1, 4], 2000);
        for r in &rows {
            assert!(
                r.bound_holds,
                "k={} t={}: {} > {}",
                r.k, r.t, r.empirical_tail, r.chernoff_bound
            );
        }
    }

    #[test]
    fn decay_rate_beats_paper_constant() {
        let ctx = ExpContext::for_tests("e06");
        let rate = empirical_decay_rate(&ctx, 256, 4000);
        assert!(rate > 1.0 / 144.0, "rate {rate} not faster than 1/144");
    }

    #[test]
    fn tails_decrease_in_t() {
        let ctx = ExpContext::for_tests("e06");
        let rows = compute(&ctx, 256, &[2], 2000);
        for w in rows.windows(2) {
            assert!(w[1].empirical_tail <= w[0].empirical_tail + 1e-12);
        }
    }
}
