//! Shared experiment infrastructure: context, registry, and report helpers.

use rbb_sim::{OutputSink, SeedTree};

/// Everything an experiment needs to run.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// Seed tree scoped to this experiment.
    pub seeds: SeedTree,
    /// Reduced sizes for smoke runs (`--quick`).
    pub quick: bool,
    /// Artifact sink (`results/<id>/`), possibly disabled.
    pub sink: OutputSink,
}

impl ExpContext {
    /// A context for unit tests: quick sizes, no artifacts, fixed seed.
    pub fn for_tests(id: &str) -> Self {
        Self {
            seeds: SeedTree::new(0xC0FFEE).scope(id),
            quick: true,
            sink: OutputSink::disabled(),
        }
    }

    /// Picks `full` or `quick` depending on the context.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// A registered experiment.
pub struct Experiment {
    /// Identifier, e.g. `"e01"`.
    pub id: &'static str,
    /// Short title for the listing.
    pub title: &'static str,
    /// The paper claim being reproduced.
    pub claim: &'static str,
    /// Entry point.
    pub run: fn(&ExpContext),
}

/// Prints the standard experiment header.
pub fn header(id: &str, title: &str, claim: &str) {
    println!("\n=== {} — {} ===", id.to_uppercase(), title);
    println!("claim: {claim}\n");
}

/// Formats an `Option<u64>` round count (None = cap exceeded).
pub fn fmt_round(r: Option<u64>) -> String {
    match r {
        Some(t) => t.to_string(),
        None => ">cap".to_string(),
    }
}

/// Returns `v[i]` as f64 convenience for building CSV rows.
pub fn f(x: impl Into<f64>) -> f64 {
    x.into()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_context_is_quick_and_silent() {
        let ctx = ExpContext::for_tests("e00");
        assert!(ctx.quick);
        assert!(!ctx.sink.enabled());
        assert_eq!(ctx.pick(10, 2), 2);
    }

    #[test]
    fn contexts_scope_seeds_by_id() {
        let a = ExpContext::for_tests("e01");
        let b = ExpContext::for_tests("e02");
        assert_ne!(a.seeds.master(), b.seeds.master());
    }

    #[test]
    fn fmt_round_variants() {
        assert_eq!(fmt_round(Some(42)), "42");
        assert_eq!(fmt_round(None), ">cap");
    }
}
