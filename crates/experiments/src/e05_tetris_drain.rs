//! E05 — Lemma 4: Tetris empties every bin within 5n rounds.
//!
//! From any initial configuration of the Tetris process, every bin is empty
//! at least once within `5n` rounds w.h.p. (Chernoff with `δ = 1/15`,
//! failure `e^{-n/180}` per bin before the union bound). We measure the
//! first round by which *all* bins have emptied, from the all-in-one and
//! uniform-random starts, and compare to the `5n` budget.

use rbb_sim::{fmt_f64, sweep_par_seeded, ArrivalSpec, ScenarioSpec, StartSpec, StopSpec, Table};
use rbb_stats::Summary;

use crate::common::{header, ExpContext};

/// One row of the E05 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E05Row {
    /// Number of bins.
    pub n: usize,
    /// Start label.
    pub start: String,
    /// Trials.
    pub trials: usize,
    /// Mean round by which all bins had emptied at least once.
    pub mean_all_emptied: f64,
    /// Worst round over trials.
    pub worst_all_emptied: u64,
    /// `worst / (5n)` — Lemma 4 predicts < 1.
    pub fraction_of_budget: f64,
    /// Trials exceeding the 5n budget (expected 0).
    pub over_budget: usize,
}

/// The declarative scenario behind one E05 cell: the Tetris process from
/// the given start, run until every bin has emptied once (the horizon sits
/// well past the 5n budget so the actual drain time is observed).
pub fn spec_for(n: usize, start: StartSpec) -> ScenarioSpec {
    ScenarioSpec::builder(n)
        .name("e05-tetris-drain")
        .arrival(ArrivalSpec::Tetris)
        .start(start)
        .stop(StopSpec::AllEmptied)
        .horizon_rounds(20 * n as u64)
        .build()
}

/// Computes the drain table: the (start × n) double loop flattens into one
/// parallel trial grid of spec-built scenarios with per-parameter seed
/// scopes derived as before (the random start keeps its historical
/// `seed ^ 0xFEED` stream, now spelled `StartSpec::Random { salt }`).
pub fn compute(ctx: &ExpContext, sizes: &[usize], trials: usize) -> Vec<E05Row> {
    let starts: [(String, StartSpec); 2] = [
        ("all-in-one".to_string(), StartSpec::AllInOne),
        (
            "uniform-random".to_string(),
            StartSpec::Random { salt: 0xFEED },
        ),
    ];
    let params: Vec<(String, StartSpec, usize)> = starts
        .iter()
        .flat_map(|(label, start)| sizes.iter().map(|&n| (label.clone(), *start, n)))
        .collect();
    sweep_par_seeded(
        ctx.seeds,
        &params,
        trials,
        |(label, _, n)| format!("{label}-n{n}"),
        |(_, start, n), _i, seed| {
            let mut scenario = spec_for(*n, *start)
                .scenario_seeded(seed)
                .expect("valid spec");
            scenario.run().stop_round
        },
    )
    .into_iter()
    .map(|((label, _, n), times)| {
        let budget = 5 * n as u64;
        let ok: Vec<f64> = times.iter().flatten().map(|&t| t as f64).collect();
        let s = Summary::from_slice(&ok);
        let worst = if ok.is_empty() { 0 } else { s.max() as u64 };
        E05Row {
            n,
            start: label,
            trials,
            mean_all_emptied: s.mean(),
            worst_all_emptied: worst,
            fraction_of_budget: worst as f64 / budget as f64,
            over_budget: times
                .iter()
                .filter(|t| t.map(|x| x > budget).unwrap_or(true))
                .count(),
        }
    })
    .collect()
}

/// Runs and prints E05.
pub fn run(ctx: &ExpContext) {
    header(
        "e05",
        "Tetris drains every bin within 5n rounds (Lemma 4)",
        "from any start, every bin of the Tetris process is empty at least once within 5n rounds w.h.p.",
    );
    let sizes: Vec<usize> = ctx.pick(vec![256, 512, 1024, 2048, 4096, 8192], vec![128, 256]);
    let trials = ctx.pick(50, 5);
    let rows = compute(ctx, &sizes, trials);

    let mut table = Table::new([
        "start",
        "n",
        "trials",
        "mean drain round",
        "worst",
        "worst/(5n)",
        "over budget",
    ]);
    for r in &rows {
        table.row([
            r.start.clone(),
            r.n.to_string(),
            r.trials.to_string(),
            fmt_f64(r.mean_all_emptied, 1),
            r.worst_all_emptied.to_string(),
            fmt_f64(r.fraction_of_budget, 3),
            r.over_budget.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\npaper: 5n is a (loose) w.h.p. budget; the all-in-one start needs ≥ ~n rounds to drain bin 0.");
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_within_budget() {
        let ctx = ExpContext::for_tests("e05");
        let rows = compute(&ctx, &[128, 256], 5);
        for r in &rows {
            assert_eq!(r.over_budget, 0, "{} n={}", r.start, r.n);
            assert!(r.fraction_of_budget < 1.0);
            assert!(r.mean_all_emptied > 0.0);
        }
    }

    #[test]
    fn all_in_one_drains_slower_than_random() {
        let ctx = ExpContext::for_tests("e05");
        let rows = compute(&ctx, &[256], 5);
        let aio = rows.iter().find(|r| r.start == "all-in-one").unwrap();
        let rnd = rows.iter().find(|r| r.start == "uniform-random").unwrap();
        // Bin 0 with n balls drains at ~1/4 net per round: much slower.
        assert!(aio.mean_all_emptied > rnd.mean_all_emptied);
    }
}
