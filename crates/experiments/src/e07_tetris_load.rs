//! E07 — Lemma 6: Tetris max load stays O(log n).
//!
//! Started from a legitimate configuration, the Tetris process keeps
//! `M̂(t) = O(log n)` over any polynomial window w.h.p. Same protocol as E01
//! but for the majorant process; its window max should sit slightly *above*
//! the original's (it dominates) while remaining logarithmic.

use rbb_core::config::Config;
use rbb_core::engine::Engine;
use rbb_core::metrics::MaxLoadTracker;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::tetris::Tetris;
use rbb_sim::{fmt_f64, sweep_par_seeded, Table};
use rbb_stats::{log_fit, Summary};

use crate::common::{header, ExpContext};

/// One row of the E07 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E07Row {
    /// Number of bins.
    pub n: usize,
    /// Window length.
    pub window: u64,
    /// Trials.
    pub trials: usize,
    /// Mean window max load of Tetris.
    pub mean_window_max: f64,
    /// Worst window max.
    pub worst_window_max: u32,
    /// `mean / ln n`.
    pub ratio_to_ln_n: f64,
}

/// The measured window: `min(200·n, n²)` rounds (the E01 protocol).
fn window_for(n: usize) -> u64 {
    (200 * n as u64).min((n as u64) * (n as u64))
}

/// Computes the Tetris stability table as one parallel (n × trial) grid;
/// seeds are derived as before, so the published numbers are unchanged.
pub fn compute(ctx: &ExpContext, sizes: &[usize], trials: usize) -> Vec<E07Row> {
    sweep_par_seeded(
        ctx.seeds,
        sizes,
        trials,
        |n| format!("n{n}"),
        |&n, _i, seed| {
            let mut t = Tetris::new(Config::one_per_bin(n), Xoshiro256pp::seed_from(seed));
            let mut tracker = MaxLoadTracker::new();
            t.run(window_for(n), &mut tracker);
            tracker.window_max()
        },
    )
    .into_iter()
    .map(|(n, maxes)| {
        let window = window_for(n);
        let s = Summary::from_iter(maxes.iter().map(|&m| m as f64));
        E07Row {
            n,
            window,
            trials,
            mean_window_max: s.mean(),
            worst_window_max: s.max() as u32,
            ratio_to_ln_n: s.mean() / (n as f64).ln(),
        }
    })
    .collect()
}

/// Runs and prints E07.
pub fn run(ctx: &ExpContext) {
    header(
        "e07",
        "Tetris max load over a polynomial window (Lemma 6)",
        "from a legitimate start, the Tetris process keeps max load O(log n) over O(n^c) rounds w.h.p.",
    );
    let sizes: Vec<usize> = ctx.pick(vec![256, 512, 1024, 2048, 4096, 8192], vec![128, 256]);
    let trials = ctx.pick(10, 3);
    let rows = compute(ctx, &sizes, trials);

    let mut table = Table::new([
        "n",
        "window",
        "trials",
        "mean window max",
        "worst",
        "mean/ln n",
    ]);
    for r in &rows {
        table.row([
            r.n.to_string(),
            r.window.to_string(),
            r.trials.to_string(),
            fmt_f64(r.mean_window_max, 2),
            r.worst_window_max.to_string(),
            fmt_f64(r.ratio_to_ln_n, 3),
        ]);
    }
    print!("{}", table.render());

    if rows.len() >= 3 {
        let xs: Vec<f64> = rows.iter().map(|r| r.n as f64).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r.mean_window_max).collect();
        let fit = log_fit(&xs, &ys);
        println!(
            "\nlog fit: window max ≈ {} + {}·ln n   (R² = {})",
            fmt_f64(fit.intercept, 2),
            fmt_f64(fit.slope, 2),
            fmt_f64(fit.r_squared, 4)
        );
    }
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tetris_window_max_is_logarithmic() {
        let ctx = ExpContext::for_tests("e07");
        let rows = compute(&ctx, &[128, 256], 3);
        for r in &rows {
            assert!(
                r.ratio_to_ln_n < 6.5,
                "n={}: ratio {}",
                r.n,
                r.ratio_to_ln_n
            );
            assert!(r.mean_window_max >= 1.0);
        }
    }

    #[test]
    fn tetris_dominates_original_in_expectation() {
        let ctx = ExpContext::for_tests("e07");
        let tetris = compute(&ctx, &[256], 3);
        let orig = crate::e01_stability::compute(&ExpContext::for_tests("e01"), &[256], 3);
        // Tetris majorizes: its window max should not be smaller on average
        // (allow tiny slack for independent seeds).
        assert!(tetris[0].mean_window_max + 1.0 >= orig[0].mean_window_max);
    }
}
