//! `rbb-exp` — runs the experiment suite E01–E26.
//!
//! Usage:
//! ```text
//! rbb-exp [--quick] [--seed <u64>] [--no-write] (all | list | <id>...)
//! ```

use rbb_experiments::common::ExpContext;
use rbb_experiments::registry;
use rbb_sim::{OutputSink, SeedTree, DEFAULT_MASTER_SEED, RESULTS_DIR};

fn usage() -> ! {
    eprintln!("usage: rbb-exp [--quick] [--seed <u64>] [--no-write] (all | list | <id>...)");
    eprintln!("       ids: e01..e26; `list` prints the registry");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut write = true;
    let mut seed = DEFAULT_MASTER_SEED;
    let mut selected: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--no-write" => write = false,
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other => selected.push(other.to_string()),
        }
        i += 1;
    }
    if selected.is_empty() {
        usage();
    }

    let registry = registry();

    if selected.iter().any(|s| s == "list") {
        println!("available experiments:");
        for e in &registry {
            println!("  {}  {}  [{}]", e.id, e.title, e.claim);
        }
        return;
    }

    let run_all = selected.iter().any(|s| s == "all");
    // Reject unknown ids up front: silently ignoring `rbb-exp e01 e99`
    // would report success while skipping work.
    let unknown: Vec<&String> = selected
        .iter()
        .filter(|s| *s != "all" && !registry.iter().any(|e| e.id == s.as_str()))
        .collect();
    if !unknown.is_empty() {
        eprintln!("unknown experiment id(s): {unknown:?}");
        usage();
    }
    let tree = SeedTree::new(seed);
    let start = std::time::Instant::now();
    let mut ran = 0usize;
    for e in &registry {
        if run_all || selected.iter().any(|s| s == e.id) {
            let t0 = std::time::Instant::now();
            let ctx = ExpContext {
                seeds: tree.scope(e.id),
                quick,
                sink: if write {
                    OutputSink::new(RESULTS_DIR, e.id, true)
                } else {
                    OutputSink::disabled()
                },
            };
            (e.run)(&ctx);
            println!("[{} done in {:.1?}]", e.id, t0.elapsed());
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiment matched {selected:?}");
        usage();
    }
    println!(
        "\n{} experiment(s) completed in {:.1?} (seed = {:#x}, quick = {})",
        ran,
        start.elapsed(),
        seed,
        quick
    );
}
