//! E10 — the trajectory `M(t)` vs the prior `O(√t)` bound of \[12\].
//!
//! Before this paper, the best known bound for the maximum load after `t`
//! rounds grew like `√t`. Theorem 1 replaces it with a flat `O(log n)`.
//! We record the trajectory over a long window and report, at
//! logarithmically spaced checkpoints, the measured `M(t)`, the `√t` curve,
//! and the `4 ln n` line — the measured series should hug the log line while
//! the `√t` curve diverges.

use rbb_baselines::SqrtBound;
use rbb_core::engine::Engine;
use rbb_core::metrics::TrajectoryRecorder;
use rbb_core::process::LoadProcess;
use rbb_sim::{fmt_f64, Table};

use crate::common::{header, ExpContext};

/// One checkpoint row of E10.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E10Row {
    /// Checkpoint round.
    pub t: u64,
    /// Measured max load at (approximately) round `t`.
    pub measured: u32,
    /// The `m0 + √t` curve value.
    pub sqrt_bound: f64,
    /// The `4 ln n` line.
    pub log_line: f64,
}

/// Computes the trajectory comparison for one `n`.
pub fn compute(ctx: &ExpContext, n: usize, window: u64) -> Vec<E10Row> {
    let stride = (window / 2000).max(1);
    let mut p = LoadProcess::legitimate_start(n, ctx.seeds.scope(&format!("n{n}")).master());
    let mut rec = TrajectoryRecorder::with_stride(stride);
    p.run(window, &mut rec);
    let bound = SqrtBound::unit(1.0);
    let log_line = 4.0 * (n as f64).ln();

    // Logarithmically spaced checkpoints.
    let mut checkpoints = Vec::new();
    let mut t = 16u64;
    while t <= window {
        checkpoints.push(t);
        t *= 2;
    }
    let mut rows: Vec<E10Row> = checkpoints
        .into_iter()
        .map(|t| {
            let pt = rec
                .points()
                .iter()
                .min_by_key(|p| p.round.abs_diff(t))
                .expect("recorder has points");
            E10Row {
                t: pt.round,
                measured: pt.max_load,
                sqrt_bound: bound.at(pt.round),
                log_line,
            }
        })
        .collect();
    // Coarse recording strides can snap several checkpoints to the same
    // recorded round; keep each round once.
    rows.dedup_by_key(|r| r.t);
    rows
}

/// Runs and prints E10.
pub fn run(ctx: &ExpContext) {
    header(
        "e10",
        "M(t) trajectory vs the prior O(√t) bound of [12]",
        "the measured max load stays at the O(log n) level while the pre-existing √t bound diverges",
    );
    let n = ctx.pick(1024, 256);
    let window = ctx.pick(1_000_000u64, 20_000);
    let rows = compute(ctx, n, window);

    println!("n = {n}, window = {window} rounds\n");
    let mut table = Table::new([
        "t",
        "measured M(t)",
        "1 + sqrt(t)  [12]",
        "4 ln n  [this paper]",
    ]);
    for r in &rows {
        table.row([
            r.t.to_string(),
            r.measured.to_string(),
            fmt_f64(r.sqrt_bound, 1),
            fmt_f64(r.log_line, 1),
        ]);
    }
    print!("{}", table.render());

    let crossover = SqrtBound::unit(1.0).crossover(4.0 * (n as f64).ln());
    println!(
        "\ncrossover: the √t curve exceeds the 4 ln n line from t ≈ {crossover}; \
         beyond it the paper's bound is strictly sharper."
    );
    let _ = ctx.sink.write_json("rows", &rows);
    let _ = ctx.sink.write_csv(
        "series",
        &["t", "measured", "sqrt_bound", "log_line"],
        &rows
            .iter()
            .map(|r| vec![r.t as f64, r.measured as f64, r.sqrt_bound, r.log_line])
            .collect::<Vec<_>>(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_stays_below_log_line_and_sqrt_eventually_dominates() {
        let ctx = ExpContext::for_tests("e10");
        let rows = compute(&ctx, 256, 20_000);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                (r.measured as f64) <= r.log_line,
                "t={}: M={} above log line {}",
                r.t,
                r.measured,
                r.log_line
            );
        }
        // At the last checkpoint the sqrt curve is far above the measurement.
        let last = rows.last().unwrap();
        assert!(last.sqrt_bound > 4.0 * last.measured as f64);
    }

    #[test]
    fn checkpoints_are_increasing() {
        let ctx = ExpContext::for_tests("e10");
        let rows = compute(&ctx, 128, 10_000);
        for w in rows.windows(2) {
            assert!(w[1].t > w[0].t);
        }
    }
}
