//! E15 — batched Tetris / "leaky bins" (\[18\], Berenbrink et al., PODC 2016).
//!
//! The follow-up to this paper's Tetris device: the number of new balls per
//! round is random, `Binomial(n, λ)`. For `λ < 1` the process is stable with
//! load growing as `λ → 1`; `λ = 3/4` matches the paper's deterministic
//! (3/4)n in expectation; `λ = 1` is critical. We sweep λ and report window
//! max and mean total load.

use rbb_core::config::Config;
use rbb_core::engine::Engine;
use rbb_core::metrics::MaxLoadTracker;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::tetris::BatchedTetris;
use rbb_sim::{fmt_f64, run_trials_seeded, Table};
use rbb_stats::Summary;

use crate::common::{header, ExpContext};

/// One row of the E15 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E15Row {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Number of bins.
    pub n: usize,
    /// Mean window max load.
    pub mean_window_max: f64,
    /// Mean end-of-window total load (balls in system).
    pub mean_total_load: f64,
    /// `mean_window_max / ln n`.
    pub ratio_to_ln_n: f64,
}

/// Computes the λ sweep.
pub fn compute(ctx: &ExpContext, n: usize, lambdas: &[f64], trials: usize) -> Vec<E15Row> {
    lambdas
        .iter()
        .map(|&lambda| {
            let window = 200 * n as u64;
            let scope = ctx
                .seeds
                .scope(&format!("l{}-n{n}", (lambda * 100.0) as u32));
            let results: Vec<(u32, u64)> = run_trials_seeded(scope, trials, |_i, seed| {
                let mut p = BatchedTetris::new(
                    Config::one_per_bin(n),
                    lambda,
                    Xoshiro256pp::seed_from(seed),
                );
                let mut t = MaxLoadTracker::new();
                p.run(window, &mut t);
                (t.window_max(), p.config().total_balls())
            });
            let maxes = Summary::from_iter(results.iter().map(|r| r.0 as f64));
            let totals = Summary::from_iter(results.iter().map(|r| r.1 as f64));
            E15Row {
                lambda,
                n,
                mean_window_max: maxes.mean(),
                mean_total_load: totals.mean(),
                ratio_to_ln_n: maxes.mean() / (n as f64).ln(),
            }
        })
        .collect()
}

/// Runs and prints E15.
pub fn run(ctx: &ExpContext) {
    header(
        "e15",
        "batched Tetris / leaky bins ([18])",
        "Binomial(n, λ) arrivals: stable with O(log n)-ish max load for λ < 1, load grows as λ → 1",
    );
    let n = ctx.pick(1024, 256);
    let lambdas = [0.5, 0.75, 0.9, 0.95, 1.0];
    let trials = ctx.pick(10, 3);
    let rows = compute(ctx, n, &lambdas, trials);

    println!("n = {n}\n");
    let mut table = Table::new([
        "lambda",
        "mean window max",
        "mean/ln n",
        "mean total load at end",
    ]);
    for r in &rows {
        table.row([
            fmt_f64(r.lambda, 2),
            fmt_f64(r.mean_window_max, 2),
            fmt_f64(r.ratio_to_ln_n, 3),
            fmt_f64(r.mean_total_load, 0),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nλ = 0.75 reproduces the paper's Tetris scale (compare E07); \
         λ = 1 is critical — total load performs an unbiased random walk and spreads."
    );
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_load_monotone_in_lambda() {
        let ctx = ExpContext::for_tests("e15");
        let rows = compute(&ctx, 256, &[0.5, 0.9], 3);
        assert!(rows[1].mean_window_max > rows[0].mean_window_max);
    }

    #[test]
    fn subcritical_is_logarithmic() {
        let ctx = ExpContext::for_tests("e15");
        let rows = compute(&ctx, 256, &[0.75], 3);
        assert!(
            rows[0].ratio_to_ln_n < 6.5,
            "ratio {}",
            rows[0].ratio_to_ln_n
        );
    }

    #[test]
    fn equilibrium_total_load_scales_with_lambda() {
        let ctx = ExpContext::for_tests("e15");
        let rows = compute(&ctx, 256, &[0.5, 0.75], 3);
        // Busy fraction solves b = 1 - e^{-λ(…)}: higher λ keeps more balls.
        assert!(rows[1].mean_total_load > rows[0].mean_total_load);
    }
}
