//! E22 — arrival correlation at scale (Appendix B beyond n = 2).
//!
//! Appendix B proves for `n = 2` that consecutive arrival counts at a bin
//! are positively associated: `P(X₁=0, X₂=0) > P(X₁=0)P(X₂=0)`. The paper's
//! intuition ("a lot of empty bins now makes zero arrivals more likely next
//! round too") suggests the effect persists for all `n` — it is why the
//! Tetris detour is needed at all. We measure the lag-1..8 autocorrelation
//! of the per-bin arrival series and the zero-pair excess
//! `P(0,0) − P(0)²` across an `n` sweep at equilibrium.

use rbb_core::arrivals::ArrivalTracker;
use rbb_core::engine::Engine;
use rbb_core::process::LoadProcess;
use rbb_sim::{fmt_f64, run_trials_seeded, Table};
use rbb_stats::{autocorrelation, Summary};

use crate::common::{header, ExpContext};

/// One row of the E22 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E22Row {
    /// Number of bins.
    pub n: usize,
    /// Mean lag-1 autocorrelation of the arrival series (over trials/bins).
    pub acf1: f64,
    /// Mean lag-4 autocorrelation.
    pub acf4: f64,
    /// Empirical `P(X=0)`.
    pub p_zero: f64,
    /// Empirical `P(X_t=0, X_{t+1}=0)`.
    pub p_zero_pair: f64,
    /// The association excess `P(0,0) − P(0)²` (positive ⇒ not negatively
    /// associated, the Appendix-B phenomenon).
    pub zero_excess: f64,
}

/// Computes the correlation table.
pub fn compute(ctx: &ExpContext, sizes: &[usize], trials: usize, window: u64) -> Vec<E22Row> {
    sizes
        .iter()
        .map(|&n| {
            let scope = ctx.seeds.scope(&format!("n{n}"));
            let per_trial: Vec<(f64, f64, f64, f64)> =
                run_trials_seeded(scope, trials, |i, seed| {
                    let mut p = LoadProcess::legitimate_start(n, seed);
                    p.run_silent(4 * n as u64);
                    // Track a different bin per trial.
                    let bin = (i * 7) % n;
                    let mut t = ArrivalTracker::with_initial(bin, p.config());
                    p.run(window, &mut t);
                    let series = t.series_f64();
                    (
                        autocorrelation(&series, 1),
                        autocorrelation(&series, 4),
                        t.zero_fraction(),
                        t.zero_pair_fraction(),
                    )
                });
            let acf1 = Summary::from_iter(per_trial.iter().map(|r| r.0)).mean();
            let acf4 = Summary::from_iter(per_trial.iter().map(|r| r.1)).mean();
            let p0 = Summary::from_iter(per_trial.iter().map(|r| r.2)).mean();
            let p00 = Summary::from_iter(per_trial.iter().map(|r| r.3)).mean();
            E22Row {
                n,
                acf1,
                acf4,
                p_zero: p0,
                p_zero_pair: p00,
                zero_excess: p00 - p0 * p0,
            }
        })
        .collect()
}

/// Runs and prints E22.
pub fn run(ctx: &ExpContext) {
    header(
        "e22",
        "arrival correlation at scale (Appendix B generalized)",
        "consecutive arrivals at a bin are positively associated for all n, not just n = 2",
    );
    let sizes: Vec<usize> = ctx.pick(vec![64, 256, 1024, 4096], vec![64, 256]);
    let trials = ctx.pick(10, 3);
    let window = ctx.pick(200_000u64, 30_000);
    let rows = compute(ctx, &sizes, trials, window);

    let mut table = Table::new([
        "n",
        "lag-1 ACF",
        "lag-4 ACF",
        "P(X=0)",
        "P(0,0)",
        "P(0,0) - P(0)^2",
    ]);
    for r in &rows {
        table.row([
            r.n.to_string(),
            fmt_f64(r.acf1, 4),
            fmt_f64(r.acf4, 4),
            fmt_f64(r.p_zero, 4),
            fmt_f64(r.p_zero_pair, 4),
            fmt_f64(r.zero_excess, 5),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\npaper (Appendix B, n=2 exact): P(0,0) = 0.125 > 0.09375 = P(0)·P(0).\n\
         here: the zero excess is positive at small n and decays like O(1/n) — by n ≈ 4096 \
         it falls below Monte Carlo noise. the association is positive (never provably \
         negative), so negative-association tooling is unavailable at any n and the \
         Tetris coupling (E04) is genuinely needed; its *magnitude* dilutes as each bin's \
         influence shrinks, matching the appendix's intuition."
    );
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_excess_positive_small_n() {
        let ctx = ExpContext::for_tests("e22");
        let rows = compute(&ctx, &[64], 4, 50_000);
        assert!(rows[0].zero_excess > 0.0, "excess {}", rows[0].zero_excess);
        assert!(rows[0].acf1 > 0.0, "lag-1 ACF {}", rows[0].acf1);
    }

    #[test]
    fn correlation_shrinks_with_n() {
        let ctx = ExpContext::for_tests("e22");
        let rows = compute(&ctx, &[32, 512], 4, 50_000);
        assert!(
            rows[1].acf1 < rows[0].acf1 + 0.02,
            "ACF should dilute: {} vs {}",
            rows[0].acf1,
            rows[1].acf1
        );
    }

    #[test]
    fn zero_probability_near_poisson() {
        let ctx = ExpContext::for_tests("e22");
        let rows = compute(&ctx, &[256], 3, 30_000);
        // P(0) ≈ e^{-0.586} ≈ 0.557 (busy fraction 0.586, cf. E03).
        assert!((rows[0].p_zero - 0.557).abs() < 0.03, "{}", rows[0].p_zero);
    }
}
