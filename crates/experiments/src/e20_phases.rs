//! E20 — the phase structure behind Lemma 6.
//!
//! Lemma 6's proof decomposes a bin's timeline into *phases* (busy periods):
//! a phase opens with load `O(log n/log log n)` w.h.p. (one-shot event) and,
//! coupled against the Lemma-5 drift chain, lasts `O(log n)` rounds w.h.p.
//! We measure both distributions directly in the original process — opening
//! loads, durations, and within-phase peaks — across an `n` sweep.

use rbb_core::engine::Engine;
use rbb_core::phases::PhaseTracker;
use rbb_core::process::LoadProcess;
use rbb_sim::{fmt_f64, run_trials_seeded, Table};
use rbb_stats::Summary;

use crate::common::{header, ExpContext};

/// One row of the E20 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E20Row {
    /// Number of bins.
    pub n: usize,
    /// Completed phases observed (pooled over trials).
    pub phases: usize,
    /// Mean phase duration (rounds).
    pub mean_duration: f64,
    /// Longest phase seen.
    pub max_duration: u64,
    /// `max_duration / ln n` — Lemma 6 predicts a constant.
    pub max_duration_over_ln_n: f64,
    /// Largest phase-opening load.
    pub max_opening: u32,
    /// `max_opening / (ln n / ln ln n)` — one-shot scale, constant.
    pub max_opening_over_oneshot: f64,
}

/// Computes the phase-structure table.
pub fn compute(ctx: &ExpContext, sizes: &[usize], trials: usize) -> Vec<E20Row> {
    sizes
        .iter()
        .map(|&n| {
            let tracked = 64.min(n);
            let window = 100 * n as u64;
            let scope = ctx.seeds.scope(&format!("n{n}"));
            let per_trial: Vec<(usize, f64, u64, u32)> =
                run_trials_seeded(scope, trials, |_i, seed| {
                    let mut p = LoadProcess::legitimate_start(n, seed);
                    p.run_silent(4 * n as u64); // equilibrate
                    let mut t = PhaseTracker::first_k(tracked);
                    p.run(window, &mut t);
                    (
                        t.completed(),
                        t.mean_duration(),
                        t.max_duration(),
                        t.max_opening_load(),
                    )
                });
            let phases: usize = per_trial.iter().map(|r| r.0).sum();
            let mean_dur = Summary::from_iter(per_trial.iter().map(|r| r.1)).mean();
            let max_dur = per_trial.iter().map(|r| r.2).max().unwrap_or(0);
            let max_open = per_trial.iter().map(|r| r.3).max().unwrap_or(0);
            let nf = n as f64;
            E20Row {
                n,
                phases,
                mean_duration: mean_dur,
                max_duration: max_dur,
                max_duration_over_ln_n: max_dur as f64 / nf.ln(),
                max_opening: max_open,
                max_opening_over_oneshot: max_open as f64 / (nf.ln() / nf.ln().ln()),
            }
        })
        .collect()
}

/// Runs and prints E20.
pub fn run(ctx: &ExpContext) {
    header(
        "e20",
        "busy-period phase structure (Lemma 6's proof device)",
        "phases open with O(log n/log log n) load and last O(log n) rounds w.h.p.",
    );
    let sizes: Vec<usize> = ctx.pick(vec![256, 1024, 4096], vec![128, 256]);
    let trials = ctx.pick(10, 3);
    let rows = compute(ctx, &sizes, trials);

    let mut table = Table::new([
        "n",
        "phases",
        "mean duration",
        "max duration",
        "max dur/ln n",
        "max opening load",
        "opening/(ln n/ln ln n)",
    ]);
    for r in &rows {
        table.row([
            r.n.to_string(),
            r.phases.to_string(),
            fmt_f64(r.mean_duration, 2),
            r.max_duration.to_string(),
            fmt_f64(r.max_duration_over_ln_n, 2),
            r.max_opening.to_string(),
            fmt_f64(r.max_opening_over_oneshot, 2),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\npaper: both normalized columns are flat constants in n — the two ingredients of \
         Lemma 6 (short phases, small openings) hold in the original process, not just Tetris."
    );
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_short_and_openings_small() {
        let ctx = ExpContext::for_tests("e20");
        let rows = compute(&ctx, &[256], 3);
        let r = &rows[0];
        assert!(r.phases > 500);
        assert!(r.mean_duration < 8.0, "mean duration {}", r.mean_duration);
        assert!(
            r.max_duration_over_ln_n < 25.0,
            "{}",
            r.max_duration_over_ln_n
        );
        assert!(
            r.max_opening_over_oneshot < 5.0,
            "{}",
            r.max_opening_over_oneshot
        );
    }

    #[test]
    fn normalized_columns_flat_across_n() {
        let ctx = ExpContext::for_tests("e20");
        let rows = compute(&ctx, &[128, 512], 2);
        // Ratios should not grow by more than ~2x over a 4x size range.
        assert!(rows[1].max_duration_over_ln_n < 3.0 * rows[0].max_duration_over_ln_n + 3.0);
    }
}
