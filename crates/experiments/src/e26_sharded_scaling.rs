//! E26 — sharded-engine scaling: rounds/sec vs shard count at large `n`.
//!
//! The sharded engine (`rbb_core::sharded`, `engine: "sharded"` at the spec
//! layer) partitions the bins into `S` strided shards with one RNG stream
//! each, so a round can fan out across a thread pool while the trajectory
//! stays a pure function of `(spec, seed, S)` — never of the worker count.
//! This experiment measures what that buys (or costs) on the current
//! machine:
//!
//! * **Throughput table**: rounds/sec for the dense engine and for the
//!   sharded engine at `S ∈ {1, 2, 4, 8}`, at `n ∈ {10^6, 10^7}` from the
//!   legitimate one-per-bin start (the paper's `m = n` regime, where every
//!   round moves ≈ `0.57 n` balls and the engines are bandwidth-bound).
//! * **Context columns**: the machine's available parallelism and the
//!   speedup of each row against the dense baseline at the same `n` — the
//!   number `rbb-bench` gates on when (and only when) the machine has at
//!   least as many cores as shards.
//!
//! Wall-clock numbers are machine-dependent by nature, so unlike every
//! other experiment the throughput columns are *not* reproducible — the
//! committed artifact records one machine's profile. What **is** pinned
//! (here and in `tests/proptest_sharded.rs`) is the law: `S = 1` is
//! bit-identical to the dense engine, and every `S` conserves mass and
//! agrees with dense in distribution. The unit tests below re-assert the
//! bit-level half at test sizes so the table can never drift from the
//! trajectory contract it advertises.

use std::time::Instant;

use rbb_core::prelude::*;
use rbb_core::sharded::ShardedLoadProcess;

use crate::common::{header, ExpContext};

/// One row of the throughput table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E26Row {
    /// Number of bins (= balls; one-per-bin start).
    pub n: usize,
    /// Engine label: `"dense"` or `"sharded"`.
    pub engine: &'static str,
    /// Shard count (0 for the dense engine, which has no shards).
    pub shards: usize,
    /// Rounds executed inside the timed window.
    pub rounds: u64,
    /// Measured wall-clock throughput (machine-dependent).
    pub rounds_per_sec: f64,
    /// Throughput ratio against the dense row at the same `n`.
    pub speedup_vs_dense: f64,
}

/// Runs `rounds` batched rounds of `run` after `warmup` untimed ones and
/// returns the measured rounds/sec, asserting mass conservation on exit.
fn time_rounds<E: Engine>(mut engine: E, warmup: u64, rounds: u64, run: fn(&mut E)) -> f64 {
    let balls = engine.config().total_balls();
    for _ in 0..warmup {
        run(&mut engine);
    }
    let t0 = Instant::now();
    for _ in 0..rounds {
        run(&mut engine);
    }
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(
        engine.config().total_balls(),
        balls,
        "mass not conserved during the timed window"
    );
    rounds as f64 / elapsed
}

/// Computes the throughput table: one dense row plus one sharded row per
/// shard count, for each `n` in the grid.
pub fn compute(grid: &[usize], shard_counts: &[usize], warmup: u64, rounds: u64) -> Vec<E26Row> {
    let mut rows = Vec::new();
    for &n in grid {
        let dense = time_rounds(LoadProcess::legitimate_start(n, 1), warmup, rounds, |e| {
            e.step_batched();
        });
        rows.push(E26Row {
            n,
            engine: "dense",
            shards: 0,
            rounds,
            rounds_per_sec: dense,
            speedup_vs_dense: 1.0,
        });
        for &s in shard_counts {
            let rps = time_rounds(
                ShardedLoadProcess::legitimate_start(n, 1, s),
                warmup,
                rounds,
                |e| {
                    e.step_batched();
                },
            );
            rows.push(E26Row {
                n,
                engine: "sharded",
                shards: s,
                rounds,
                rounds_per_sec: rps,
                speedup_vs_dense: rps / dense,
            });
        }
    }
    rows
}

/// Runs and prints E26.
pub fn run(ctx: &ExpContext) {
    header(
        "e26",
        "sharded-engine scaling at large n",
        "fixed shard count => thread-count-invariant trajectory; throughput scales with cores, not with the contract",
    );
    let grid: Vec<usize> = ctx.pick(vec![1_000_000, 10_000_000], vec![1 << 16]);
    let shard_counts: Vec<usize> = ctx.pick(vec![1, 2, 4, 8], vec![1, 4]);
    let warmup = ctx.pick(3, 1);
    let rounds = ctx.pick(20, 50);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "machine: available parallelism = {cores} (throughput columns are machine-dependent; \
         the trajectory is not)\n"
    );

    let rows = compute(&grid, &shard_counts, warmup, rounds);
    let mut table = rbb_sim::Table::new(["n", "engine", "shards", "rounds/sec", "vs dense"]);
    for r in &rows {
        table.row([
            r.n.to_string(),
            r.engine.to_string(),
            if r.shards == 0 {
                "-".to_string()
            } else {
                r.shards.to_string()
            },
            rbb_sim::fmt_f64(r.rounds_per_sec, 2),
            format!("{}x", rbb_sim::fmt_f64(r.speedup_vs_dense, 2)),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nfinding: the sharded engine's merge discipline (per-shard streams, shard-order \
         arrival application) costs a constant factor single-threaded and pays it back only \
         when the thread pool has >= S workers — which is exactly why ci.sh's 2x perf gate is \
         enforced machine-aware. Correctness is unconditional: S = 1 is bit-identical to \
         dense, and any fixed S is bit-identical to itself at every RAYON_NUM_THREADS."
    );
    let _ = ctx.sink.write_json("throughput", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shard_is_bit_identical_to_dense_at_test_size() {
        // The contract the table's prose leans on, re-pinned at test size:
        // the S = 1 sharded engine replays the dense trajectory draw for
        // draw from the same legitimate start.
        let n = 1 << 10;
        let mut dense = LoadProcess::legitimate_start(n, 9);
        let mut sharded = ShardedLoadProcess::legitimate_start(n, 9, 1);
        for round in 0..300 {
            let a = dense.step_batched();
            let b = sharded.step_batched();
            assert_eq!(a, b, "departure count diverged at round {round}");
        }
        assert_eq!(Engine::config(&dense), Engine::config(&sharded));
    }

    #[test]
    fn table_has_one_dense_and_one_row_per_shard_count() {
        let rows = compute(&[1 << 12], &[1, 4], 0, 10);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].engine, "dense");
        assert_eq!(rows[0].shards, 0);
        assert_eq!(rows[0].speedup_vs_dense, 1.0);
        assert_eq!(
            rows.iter()
                .filter(|r| r.engine == "sharded")
                .map(|r| r.shards)
                .collect::<Vec<_>>(),
            vec![1, 4]
        );
        for r in &rows {
            assert!(
                r.rounds_per_sec > 0.0 && r.speedup_vs_dense > 0.0,
                "degenerate timing row: {r:?}"
            );
        }
    }
}
