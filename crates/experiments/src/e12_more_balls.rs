//! E12 — Section 5 open question: `m > n` balls.
//!
//! The paper proves self-stabilization for `m = n` (hence also `m < n`) and
//! asks whether it extends to `m = O(n log n)`. We sweep the load factor
//! `m/n ∈ {0.5, 1, 2, 4, ln n}` and measure the window max load, reporting
//! the excess `window max − m/n` normalized by `ln n` and the empirical
//! probability (with Wilson upper bound) that the excess ever crosses
//! `4 ln n` — the stability event the proven regime forbids.
//!
//! Each factor runs as a declarative [`EnsembleSpec`] over a spec-built
//! scenario (random start drawn from `seed ^ 0x57A12`); the ensemble
//! migration regenerated this table's numbers (the historical version
//! threaded one RNG through start construction and the run), with the same
//! qualitative finding.
//!
//! **Finding**: the excess stays `O(log n)` for `m ≤ n` but grows markedly
//! once `m ≫ n` — with nearly all bins busy, the per-bin drift
//! `E[arrivals] − 1 → 0`, queue fluctuations become diffusive, and the
//! Lemma-1 empty-bins argument (the engine of the paper's proof) genuinely
//! fails. The open question is *open for a reason*; this experiment maps
//! where the proof technique stops working.

use rbb_sim::{fmt_f64, EnsembleSpec, MetricKind, MetricSpec, ScenarioSpec, StartSpec, Table};

use crate::common::{header, ExpContext};

/// The salt of the random-start stream (`seed ^ salt`), fixed so committed
/// numbers regenerate.
const START_SALT: u64 = 0x57A12;

/// One row of the E12 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E12Row {
    /// Number of bins.
    pub n: usize,
    /// Number of balls.
    pub m: u64,
    /// Load factor label.
    pub label: String,
    /// Mean window max load.
    pub mean_window_max: f64,
    /// Excess over the mean level: `mean_window_max − m/n`.
    pub excess_over_average: f64,
    /// Excess normalized by `ln n`.
    pub excess_over_ln_n: f64,
    /// Empirical `P(window max >= m/n + 4 ln n)` — stability violation.
    pub p_excess: f64,
    /// Wilson 95% upper bound on that tail probability.
    pub p_excess_hi: f64,
}

/// The declarative scenario behind one E12 cell: `m` balls thrown uniformly
/// at random into `n` bins, then the paper's process for `100·n` rounds.
pub fn spec_for(n: usize, m: u64) -> ScenarioSpec {
    ScenarioSpec::builder(n)
        .name("e12-more-balls")
        .balls(m)
        .start(StartSpec::Random { salt: START_SALT })
        .horizon_factor(100)
        .build()
}

/// The excess threshold for one cell: `m/n + 4 ln n`.
fn excess_threshold(n: usize, m: u64) -> f64 {
    m as f64 / n as f64 + 4.0 * (n as f64).ln()
}

/// The declarative ensemble behind one E12 cell.
pub fn ensemble_for(ctx: &ExpContext, n: usize, m: u64, trials: usize) -> EnsembleSpec {
    EnsembleSpec::new(
        spec_for(n, m),
        ctx.seeds.scope(&format!("m{m}-n{n}")).master(),
        trials,
    )
    .with_metrics(vec![MetricSpec::with_thresholds(
        MetricKind::WindowMaxLoad,
        vec![excess_threshold(n, m)],
    )])
}

/// Computes the m-sweep table: one streaming ensemble per load factor.
pub fn compute(
    ctx: &ExpContext,
    n: usize,
    factors: &[(String, u64)],
    trials: usize,
) -> Vec<E12Row> {
    factors
        .iter()
        .map(|(label, m)| {
            let report = ensemble_for(ctx, n, *m, trials)
                .run()
                .expect("valid ensemble");
            let wml = report
                .metric(MetricKind::WindowMaxLoad)
                .expect("requested metric");
            let tail = wml
                .tail_at(excess_threshold(n, *m))
                .expect("requested tail");
            let avg = *m as f64 / n as f64;
            E12Row {
                n,
                m: *m,
                label: label.clone(),
                mean_window_max: wml.mean,
                excess_over_average: wml.mean - avg,
                excess_over_ln_n: (wml.mean - avg) / (n as f64).ln(),
                p_excess: tail.probability,
                p_excess_hi: tail.wilson.hi,
            }
        })
        .collect()
}

/// The standard factor sweep for a given `n`.
pub fn standard_factors(n: usize) -> Vec<(String, u64)> {
    let nf = n as f64;
    vec![
        ("m = n/2".to_string(), (n / 2) as u64),
        ("m = n".to_string(), n as u64),
        ("m = 2n".to_string(), 2 * n as u64),
        ("m = 4n".to_string(), 4 * n as u64),
        ("m = n ln n".to_string(), (nf * nf.ln()) as u64),
    ]
}

/// Runs and prints E12.
pub fn run(ctx: &ExpContext) {
    header(
        "e12",
        "more balls than bins (Section 5 open question)",
        "does self-stabilization extend to m = O(n log n)? measured excess load over m/n should stay O(log n)",
    );
    let n = ctx.pick(1024, 256);
    let trials = ctx.pick(10, 3);
    let rows = compute(ctx, n, &standard_factors(n), trials);

    println!("n = {n}\n");
    let mut table = Table::new([
        "load factor",
        "m",
        "mean window max",
        "excess over m/n",
        "excess / ln n",
        "P(excess ≥ 4 ln n)",
        "wilson hi",
    ]);
    for r in &rows {
        table.row([
            r.label.clone(),
            r.m.to_string(),
            fmt_f64(r.mean_window_max, 2),
            fmt_f64(r.excess_over_average, 2),
            fmt_f64(r.excess_over_ln_n, 3),
            fmt_f64(r.p_excess, 3),
            fmt_f64(r.p_excess_hi, 3),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nfinding: excess is O(log n) for m ≤ n but grows sharply for m ≫ n — with all bins \
         busy the per-bin drift vanishes and fluctuations are diffusive; the Lemma-1 empty-bins \
         argument fails exactly where the paper leaves the question open."
    );
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excess_logarithmic_up_to_m_equals_n_then_grows() {
        let ctx = ExpContext::for_tests("e12");
        let rows = compute(&ctx, 256, &standard_factors(256), 2);
        for r in &rows {
            assert!(r.mean_window_max >= r.m as f64 / r.n as f64);
            if r.m <= r.n as u64 {
                // The proven regime: excess stays O(log n).
                assert!(
                    r.excess_over_ln_n < 5.0,
                    "{}: excess/ln n = {}",
                    r.label,
                    r.excess_over_ln_n
                );
            }
        }
        // The super-critical regime shows strictly larger normalized excess
        // than the proven regime — the documented finding.
        let at_n = rows.iter().find(|r| r.m == 256).unwrap().excess_over_ln_n;
        let at_4n = rows.iter().find(|r| r.m == 1024).unwrap().excess_over_ln_n;
        assert!(at_4n > at_n, "expected excess growth: {at_n} vs {at_4n}");
    }

    #[test]
    fn max_load_increases_with_m() {
        let ctx = ExpContext::for_tests("e12");
        let rows = compute(&ctx, 128, &[("a".into(), 128), ("b".into(), 512)], 2);
        assert!(rows[1].mean_window_max > rows[0].mean_window_max);
    }

    #[test]
    fn standard_factors_are_increasing() {
        let f = standard_factors(1024);
        for w in f.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    fn stability_tail_is_zero_in_the_proven_regime() {
        let ctx = ExpContext::for_tests("e12");
        let rows = compute(&ctx, 128, &[("m = n".into(), 128)], 3);
        assert_eq!(rows[0].p_excess, 0.0);
        assert!(rows[0].p_excess_hi < 1.0);
    }
}
