//! E12 — Section 5 open question: `m > n` balls.
//!
//! The paper proves self-stabilization for `m = n` (hence also `m < n`) and
//! asks whether it extends to `m = O(n log n)`. We sweep the load factor
//! `m/n ∈ {0.5, 1, 2, 4, ln n}` and measure the window max load, reporting
//! the excess `window max − m/n` normalized by `ln n`.
//!
//! **Finding**: the excess stays `O(log n)` for `m ≤ n` but grows markedly
//! once `m ≫ n` — with nearly all bins busy, the per-bin drift
//! `E[arrivals] − 1 → 0`, queue fluctuations become diffusive, and the
//! Lemma-1 empty-bins argument (the engine of the paper's proof) genuinely
//! fails. The open question is *open for a reason*; this experiment maps
//! where the proof technique stops working.

use rbb_core::config::Config;
use rbb_core::engine::Engine;
use rbb_core::metrics::MaxLoadTracker;
use rbb_core::process::LoadProcess;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::sampling::random_assignment;
use rbb_sim::{fmt_f64, sweep_par_seeded, Table};
use rbb_stats::Summary;

use crate::common::{header, ExpContext};

/// One row of the E12 table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E12Row {
    /// Number of bins.
    pub n: usize,
    /// Number of balls.
    pub m: u64,
    /// Load factor label.
    pub label: String,
    /// Mean window max load.
    pub mean_window_max: f64,
    /// Excess over the mean level: `mean_window_max − m/n`.
    pub excess_over_average: f64,
    /// Excess normalized by `ln n`.
    pub excess_over_ln_n: f64,
}

/// Computes the m-sweep table.
pub fn compute(
    ctx: &ExpContext,
    n: usize,
    factors: &[(String, u64)],
    trials: usize,
) -> Vec<E12Row> {
    sweep_par_seeded(
        ctx.seeds,
        factors,
        trials,
        |(_, m)| format!("m{m}-n{n}"),
        |(_, m), _i, seed| {
            let window = 100 * n as u64;
            let mut rng = Xoshiro256pp::seed_from(seed);
            let cfg = Config::from_loads(random_assignment(&mut rng, n, *m));
            let mut p = LoadProcess::new(cfg, rng);
            let mut t = MaxLoadTracker::new();
            p.run(window, &mut t);
            t.window_max()
        },
    )
    .into_iter()
    .map(|((label, m), maxes)| {
        let s = Summary::from_iter(maxes.iter().map(|&x| x as f64));
        let avg = m as f64 / n as f64;
        E12Row {
            n,
            m,
            label,
            mean_window_max: s.mean(),
            excess_over_average: s.mean() - avg,
            excess_over_ln_n: (s.mean() - avg) / (n as f64).ln(),
        }
    })
    .collect()
}

/// The standard factor sweep for a given `n`.
pub fn standard_factors(n: usize) -> Vec<(String, u64)> {
    let nf = n as f64;
    vec![
        ("m = n/2".to_string(), (n / 2) as u64),
        ("m = n".to_string(), n as u64),
        ("m = 2n".to_string(), 2 * n as u64),
        ("m = 4n".to_string(), 4 * n as u64),
        ("m = n ln n".to_string(), (nf * nf.ln()) as u64),
    ]
}

/// Runs and prints E12.
pub fn run(ctx: &ExpContext) {
    header(
        "e12",
        "more balls than bins (Section 5 open question)",
        "does self-stabilization extend to m = O(n log n)? measured excess load over m/n should stay O(log n)",
    );
    let n = ctx.pick(1024, 256);
    let trials = ctx.pick(10, 3);
    let rows = compute(ctx, n, &standard_factors(n), trials);

    println!("n = {n}\n");
    let mut table = Table::new([
        "load factor",
        "m",
        "mean window max",
        "excess over m/n",
        "excess / ln n",
    ]);
    for r in &rows {
        table.row([
            r.label.clone(),
            r.m.to_string(),
            fmt_f64(r.mean_window_max, 2),
            fmt_f64(r.excess_over_average, 2),
            fmt_f64(r.excess_over_ln_n, 3),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nfinding: excess is O(log n) for m ≤ n but grows sharply for m ≫ n — with all bins \
         busy the per-bin drift vanishes and fluctuations are diffusive; the Lemma-1 empty-bins \
         argument fails exactly where the paper leaves the question open."
    );
    let _ = ctx.sink.write_json("rows", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excess_logarithmic_up_to_m_equals_n_then_grows() {
        let ctx = ExpContext::for_tests("e12");
        let rows = compute(&ctx, 256, &standard_factors(256), 2);
        for r in &rows {
            assert!(r.mean_window_max >= r.m as f64 / r.n as f64);
            if r.m <= r.n as u64 {
                // The proven regime: excess stays O(log n).
                assert!(
                    r.excess_over_ln_n < 5.0,
                    "{}: excess/ln n = {}",
                    r.label,
                    r.excess_over_ln_n
                );
            }
        }
        // The super-critical regime shows strictly larger normalized excess
        // than the proven regime — the documented finding.
        let at_n = rows.iter().find(|r| r.m == 256).unwrap().excess_over_ln_n;
        let at_4n = rows.iter().find(|r| r.m == 1024).unwrap().excess_over_ln_n;
        assert!(at_4n > at_n, "expected excess growth: {at_n} vs {at_4n}");
    }

    #[test]
    fn max_load_increases_with_m() {
        let ctx = ExpContext::for_tests("e12");
        let rows = compute(&ctx, 128, &[("a".into(), 128), ("b".into(), 512)], 2);
        assert!(rows[1].mean_window_max > rows[0].mean_window_max);
    }

    #[test]
    fn standard_factors_are_increasing() {
        let f = standard_factors(1024);
        for w in f.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
    }
}
