//! # rbb-experiments — the paper's quantitative claims as experiments
//!
//! The paper (SPAA 2015 / Distributed Computing 2019) is purely analytical —
//! it has no numbered tables or figures — so the reproduction target is its
//! complete set of quantitative claims. Each module `eNN_*` is one
//! experiment; see DESIGN.md §4 for the index and EXPERIMENTS.md for
//! paper-vs-measured records. Run them via the `rbb-exp` binary:
//!
//! ```text
//! cargo run -p rbb-experiments --release -- all          # everything
//! cargo run -p rbb-experiments --release -- e01 e04      # a subset
//! cargo run -p rbb-experiments --release -- --quick all  # smoke sizes
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod e01_stability;
pub mod e02_convergence;
pub mod e03_empty_bins;
pub mod e04_coupling;
pub mod e05_tetris_drain;
pub mod e06_absorption;
pub mod e07_tetris_load;
pub mod e08_cover_time;
pub mod e09_adversarial;
pub mod e10_sqrt_comparison;
pub mod e11_appendix_b;
pub mod e12_more_balls;
pub mod e13_graphs;
pub mod e14_dchoice;
pub mod e15_batched_tetris;
pub mod e16_strategies;
pub mod e17_progress;
pub mod e18_oneshot;
pub mod e19_jackson;
pub mod e20_phases;
pub mod e21_mixing;
pub mod e22_arrival_correlation;
pub mod e23_graph_cover;
pub mod e24_window_scaling;
pub mod e25_sparse_regime;
pub mod e26_sharded_scaling;
pub mod e27_weighted_skew;

use common::Experiment;

/// The full experiment registry, in id order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e01",
            title: "stability of the maximum load",
            claim: "Theorem 1(a): M(t) = O(log n) over poly windows",
            run: e01_stability::run,
        },
        Experiment {
            id: "e02",
            title: "linear-time convergence",
            claim: "Theorem 1(b): legitimate within O(n) rounds from anywhere",
            run: e02_convergence::run,
        },
        Experiment {
            id: "e03",
            title: "empty bins stay above n/4",
            claim: "Lemmas 1-2",
            run: e03_empty_bins::run,
        },
        Experiment {
            id: "e04",
            title: "Tetris coupling dominates",
            claim: "Lemma 3",
            run: e04_coupling::run,
        },
        Experiment {
            id: "e05",
            title: "Tetris drains every bin within 5n rounds",
            claim: "Lemma 4",
            run: e05_tetris_drain::run,
        },
        Experiment {
            id: "e06",
            title: "drift-chain absorption tail",
            claim: "Lemma 5: P_k(tau > t) <= e^{-t/144} for t >= 8k",
            run: e06_absorption::run,
        },
        Experiment {
            id: "e07",
            title: "Tetris max load over poly windows",
            claim: "Lemma 6",
            run: e07_tetris_load::run,
        },
        Experiment {
            id: "e08",
            title: "parallel cover time",
            claim: "Corollary 1: O(n log^2 n)",
            run: e08_cover_time::run,
        },
        Experiment {
            id: "e09",
            title: "cover time under adversarial faults",
            claim: "Section 4.1: constant-factor slowdown for gamma >= 6",
            run: e09_adversarial::run,
        },
        Experiment {
            id: "e10",
            title: "M(t) vs the prior O(sqrt t) bound",
            claim: "improvement over [12]",
            run: e10_sqrt_comparison::run,
        },
        Experiment {
            id: "e11",
            title: "negative-association counterexample",
            claim: "Appendix B: 1/8 > 3/32",
            run: e11_appendix_b::run,
        },
        Experiment {
            id: "e12",
            title: "more balls than bins",
            claim: "Section 5 open question: m up to n log n",
            run: e12_more_balls::run,
        },
        Experiment {
            id: "e13",
            title: "general graph topologies",
            claim: "Section 5 open question: regular graphs",
            run: e13_graphs::run,
        },
        Experiment {
            id: "e14",
            title: "repeated d-choice variant",
            claim: "reference [36]",
            run: e14_dchoice::run,
        },
        Experiment {
            id: "e15",
            title: "batched Tetris / leaky bins",
            claim: "reference [18]",
            run: e15_batched_tetris::run,
        },
        Experiment {
            id: "e16",
            title: "queue-strategy obliviousness",
            claim: "Section 2, footnote 2",
            run: e16_strategies::run,
        },
        Experiment {
            id: "e17",
            title: "per-token progress under FIFO",
            claim: "Section 4: Omega(t/log n)",
            run: e17_progress::run,
        },
        Experiment {
            id: "e18",
            title: "one-shot baseline comparison",
            claim: "Section 5 tightness discussion",
            run: e18_oneshot::run,
        },
        Experiment {
            id: "e19",
            title: "closed Jackson network comparator",
            claim: "related work [30]",
            run: e19_jackson::run,
        },
        Experiment {
            id: "e20",
            title: "busy-period phase structure",
            claim: "Lemma 6 proof device: short phases, small openings",
            run: e20_phases::run,
        },
        Experiment {
            id: "e21",
            title: "mixing of the configuration chain",
            claim: "non-reversible chain forgets its start (exact small-n TV + at-scale check)",
            run: e21_mixing::run,
        },
        Experiment {
            id: "e22",
            title: "arrival correlation at scale",
            claim: "Appendix B generalized: positive association at every n",
            run: e22_arrival_correlation::run,
        },
        Experiment {
            id: "e23",
            title: "multi-token traversal beyond the clique",
            claim: "extension of Corollary 1 to the open-question topologies",
            run: e23_graph_cover::run,
        },
        Experiment {
            id: "e24",
            title: "window-length scaling of the max load",
            claim: "Theorem 1(a)'s 'any polynomial window' quantifier, probed directly",
            run: e24_window_scaling::run,
        },
        Experiment {
            id: "e25",
            title: "the sparse regime (m << n) at engine-breaking scale",
            claim: "stability with room to spare and Theta(m) convergence at n up to 10^8",
            run: e25_sparse_regime::run,
        },
        Experiment {
            id: "e26",
            title: "sharded-engine scaling at large n",
            claim: "fixed shard count => thread-invariant trajectory; throughput is the machine's business",
            run: e26_sharded_scaling::run,
        },
        Experiment {
            id: "e27",
            title: "weighted Zipf balls and capacity-constrained bins",
            claim: "weight-oblivious dynamics hold the weighted envelope at max(w_max, bound*mean); FFD packs tighter but pays collateral churn moves",
            run: e27_weighted_skew::run,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_ordered() {
        let reg = registry();
        assert_eq!(reg.len(), 27);
        for (i, e) in reg.iter().enumerate() {
            assert_eq!(e.id, format!("e{:02}", i + 1));
        }
    }
}
