//! Multi-token traversal on the complete graph (Section 4, Corollary 1).
//!
//! `n` tokens perform the repeated balls-into-bins process; each token must
//! visit all `n` nodes ("parallel resource assignment in mutual exclusion").
//! The **parallel cover time** is the first round by which every token has
//! visited every node. Corollary 1: `O(n log² n)` w.h.p. — a single `log n`
//! factor above the single-token cover time `O(n log n)`.

use rbb_core::ball_process::BallProcess;
use rbb_core::config::Config;
use rbb_core::engine::Engine;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::strategy::QueueStrategy;

use crate::bitset::FixedBitSet;

/// Multi-token traversal state: the process plus per-token visited sets.
///
/// ```
/// use rbb_core::strategy::QueueStrategy;
/// use rbb_traversal::Traversal;
///
/// let mut t = Traversal::new(32, QueueStrategy::Fifo, 42);
/// let cover = t.run_to_cover(1_000_000).expect("Corollary 1: covers w.h.p.");
/// assert!(t.all_covered());
/// assert!(cover > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Traversal {
    process: BallProcess,
    visited: Vec<FixedBitSet>,
    covered_tokens: usize,
}

impl Traversal {
    /// Starts `n` tokens, one per node (token `i` at node `i`, which counts
    /// as visited).
    pub fn new(n: usize, strategy: QueueStrategy, seed: u64) -> Self {
        Self::from_config(Config::one_per_bin(n), strategy, seed)
    }

    /// Starts from an arbitrary configuration; tokens are placed densely
    /// (see [`BallProcess::new`]) and their starting node counts as visited.
    pub fn from_config(config: Config, strategy: QueueStrategy, seed: u64) -> Self {
        let n = config.n();
        let process = BallProcess::new(config, strategy, Xoshiro256pp::stream(seed, 0));
        let m = process.balls() as usize;
        let mut visited = vec![FixedBitSet::new(n); m];
        let mut covered = 0usize;
        for bin in 0..n {
            for &ball in process.queue(bin) {
                visited[ball as usize].insert(bin);
                if visited[ball as usize].is_full() {
                    covered += 1;
                }
            }
        }
        Self {
            process,
            visited,
            covered_tokens: covered,
        }
    }

    /// Number of nodes (= bins).
    #[inline]
    pub fn n(&self) -> usize {
        self.process.n()
    }

    /// Number of tokens.
    #[inline]
    pub fn tokens(&self) -> usize {
        self.process.balls() as usize
    }

    /// Current round.
    #[inline]
    pub fn round(&self) -> u64 {
        self.process.round()
    }

    /// Tokens that have visited every node.
    #[inline]
    pub fn covered_tokens(&self) -> usize {
        self.covered_tokens
    }

    /// Whether the traversal task is complete.
    #[inline]
    pub fn all_covered(&self) -> bool {
        self.covered_tokens == self.visited.len()
    }

    /// Mean fraction of nodes visited, over tokens.
    pub fn coverage_fraction(&self) -> f64 {
        if self.visited.is_empty() {
            return 1.0;
        }
        let total: usize = self.visited.iter().map(|v| v.count_ones()).sum();
        total as f64 / (self.visited.len() * self.n()) as f64
    }

    /// The underlying process (per-token progress, delays, loads).
    pub fn process(&self) -> &BallProcess {
        &self.process
    }

    /// Visited set of a token.
    pub fn visited(&self, token: usize) -> &FixedBitSet {
        &self.visited[token]
    }

    /// Advances one round, updating visited sets; returns the number of
    /// tokens that moved.
    pub fn step(&mut self) -> usize {
        let visited = &mut self.visited;
        let covered = &mut self.covered_tokens;
        self.process.step_with(|ball, dest, _round| {
            let v = &mut visited[ball as usize];
            if v.insert(dest) && v.is_full() {
                *covered += 1;
            }
        })
    }

    /// Runs until all tokens cover all nodes, or `cap` rounds; returns the
    /// parallel cover time.
    pub fn run_to_cover(&mut self, cap: u64) -> Option<u64> {
        while !self.all_covered() {
            if self.round() >= cap {
                return None;
            }
            self.step();
        }
        Some(self.round())
    }

    /// Applies an adversarial reassignment (§4.1): `placement[token] = node`.
    /// The post-fault position counts as visited (the token is there).
    pub fn adversarial_reassign(&mut self, placement: &[usize]) {
        self.process.adversarial_reassign(placement);
        for (token, &node) in placement.iter().enumerate() {
            let v = &mut self.visited[token];
            if v.insert(node) && v.is_full() {
                self.covered_tokens += 1;
            }
        }
    }
}

/// The run family is provided by [`Engine`]. The traversal's visited-set
/// bookkeeping rides on the scalar per-move hook, so `step_batched`
/// defaults to the scalar step; `covered` exposes the Corollary-1 goal to
/// generic drivers and stop conditions.
impl Engine for Traversal {
    #[inline]
    fn step(&mut self) -> usize {
        Traversal::step(self)
    }

    #[inline]
    fn round(&self) -> u64 {
        Traversal::round(self)
    }

    #[inline]
    fn config(&self) -> &Config {
        self.process.config()
    }

    fn supports_faults(&self) -> bool {
        true
    }

    fn apply_fault(&mut self, placement: &[usize]) {
        self.adversarial_reassign(placement);
    }

    fn covered(&self) -> Option<bool> {
        Some(self.all_covered())
    }

    fn min_progress(&self) -> Option<u64> {
        Some(self.process.min_progress())
    }
}

/// Single-token cover time on the clique with uniform re-assignment — the
/// baseline of Corollary 1 (`O(n log n)` = coupon collector, since every
/// round the lone token jumps to a uniform node).
pub fn single_token_cover_time(n: usize, seed: u64, cap: u64) -> Option<u64> {
    let mut rng = Xoshiro256pp::seed_from(seed);
    let mut visited = FixedBitSet::new(n);
    visited.insert(0);
    let mut t = 0u64;
    while !visited.is_full() {
        if t >= cap {
            return None;
        }
        visited.insert(rng.uniform_usize(n));
        t += 1;
    }
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_counts_start_as_visited() {
        let t = Traversal::new(8, QueueStrategy::Fifo, 1);
        assert_eq!(t.tokens(), 8);
        for token in 0..8 {
            assert_eq!(t.visited(token).count_ones(), 1);
            assert!(t.visited(token).contains(token));
        }
        assert_eq!(t.covered_tokens(), 0);
        assert!((t.coverage_fraction() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_is_monotone() {
        let mut t = Traversal::new(16, QueueStrategy::Fifo, 2);
        let mut prev = t.coverage_fraction();
        for _ in 0..200 {
            t.step();
            let cur = t.coverage_fraction();
            assert!(cur >= prev);
            prev = cur;
        }
    }

    #[test]
    fn small_clique_covers() {
        let mut t = Traversal::new(16, QueueStrategy::Fifo, 3);
        let cover = t.run_to_cover(1_000_000).expect("must cover");
        assert!(cover > 0);
        assert!(t.all_covered());
        assert_eq!(t.covered_tokens(), 16);
        assert!((t.coverage_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cover_time_scale_is_nlog2n() {
        let n = 64;
        let mut t = Traversal::new(n, QueueStrategy::Fifo, 4);
        let cover = t.run_to_cover(10_000_000).unwrap() as f64;
        let nf = n as f64;
        let scale = nf * nf.ln() * nf.ln();
        // Expect cover within [0.2, 3]× of n ln²n for this size.
        assert!(
            cover > 0.2 * scale && cover < 3.0 * scale,
            "cover {cover}, scale {scale}"
        );
    }

    #[test]
    fn cap_returns_none() {
        let mut t = Traversal::new(64, QueueStrategy::Fifo, 5);
        assert_eq!(t.run_to_cover(3), None);
    }

    #[test]
    fn single_token_cover_is_coupon_collector() {
        let n = 128;
        let trials = 30;
        let mut total = 0u64;
        for s in 0..trials {
            total += single_token_cover_time(n, s, 10_000_000).unwrap();
        }
        let mean = total as f64 / trials as f64;
        let cc = rbb_stats::coupon_collector(n);
        assert!(mean > 0.6 * cc && mean < 1.6 * cc, "mean {mean}, cc {cc}");
    }

    #[test]
    fn parallel_cover_slower_than_single_token() {
        let n = 64;
        let mut t = Traversal::new(n, QueueStrategy::Fifo, 6);
        let parallel = t.run_to_cover(10_000_000).unwrap();
        let single = single_token_cover_time(n, 6, 10_000_000).unwrap();
        // The parallel task requires every token to cover: strictly harder.
        assert!(parallel > single, "parallel {parallel} vs single {single}");
    }

    #[test]
    fn adversarial_reassign_updates_visited() {
        let mut t = Traversal::new(8, QueueStrategy::Fifo, 7);
        let placement: Vec<usize> = (0..8).map(|i| (i + 1) % 8).collect();
        t.adversarial_reassign(&placement);
        for token in 0..8 {
            assert!(t.visited(token).contains((token + 1) % 8));
            assert_eq!(t.visited(token).count_ones(), 2);
        }
    }

    #[test]
    fn from_skewed_config_still_covers() {
        let mut t = Traversal::from_config(Config::all_in_one(12, 12), QueueStrategy::Fifo, 8);
        assert!(t.run_to_cover(1_000_000).is_some());
    }

    #[test]
    fn strategies_all_cover() {
        for strategy in QueueStrategy::ALL {
            let mut t = Traversal::new(12, strategy, 9);
            assert!(
                t.run_to_cover(1_000_000).is_some(),
                "{} failed to cover",
                strategy.label()
            );
        }
    }
}
