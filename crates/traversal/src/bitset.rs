//! A fixed-capacity bitset used for per-token visited tracking.
//!
//! With `n` tokens each tracking `n` visited nodes, memory is `n²` bits;
//! word-packed storage keeps the cover-time experiments (E08/E09) within
//! laptop memory up to `n = 16384` (32 MiB of visited bits).

/// A fixed-size set of `usize` indices backed by 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedBitSet {
    words: Vec<u64>,
    capacity: usize,
    ones: usize,
}

impl FixedBitSet {
    /// An empty set over the universe `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            ones: 0,
        }
    }

    /// Universe size.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Whether every index in the universe is set.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.ones == self.capacity
    }

    /// Whether no index is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Whether `i` is set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Sets `i`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(
            i < self.capacity,
            "index {i} out of capacity {}",
            self.capacity
        );
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.ones += 1;
            true
        } else {
            false
        }
    }

    /// Removes `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if *w & mask != 0 {
            *w &= !mask;
            self.ones -= 1;
            true
        } else {
            false
        }
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.ones = 0;
    }

    /// Iterates over set indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Recomputes `count_ones` from the raw words (validation helper).
    pub fn recount(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let s = FixedBitSet::new(100);
        assert!(s.is_empty());
        assert!(!s.is_full());
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.capacity(), 100);
    }

    #[test]
    fn insert_and_contains() {
        let mut s = FixedBitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert returns false");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count_ones(), 3);
        assert_eq!(s.recount(), 3);
    }

    #[test]
    fn remove_works() {
        let mut s = FixedBitSet::new(10);
        s.insert(5);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn full_detection() {
        let mut s = FixedBitSet::new(65);
        for i in 0..65 {
            s.insert(i);
        }
        assert!(s.is_full());
        s.remove(64);
        assert!(!s.is_full());
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let mut s = FixedBitSet::new(200);
        for i in [5usize, 63, 64, 65, 190] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![5, 63, 64, 65, 190]);
    }

    #[test]
    fn clear_resets() {
        let mut s = FixedBitSet::new(70);
        s.insert(3);
        s.insert(69);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.recount(), 0);
    }

    #[test]
    fn zero_capacity_is_trivially_full() {
        let s = FixedBitSet::new(0);
        assert!(s.is_full());
        assert!(s.is_empty());
    }
}
