//! Token-progress accounting: the `Ω(t / log n)` claim.
//!
//! Under FIFO, Theorem 1 implies every ball performs at least `Ω(t/log n)`
//! random-walk steps over any `t = poly(n)` rounds w.h.p. — no token is
//! starved for long. This module summarizes per-token progress from a
//! [`rbb_core::ball_process::BallProcess`] and checks it against the bound.

use rbb_core::ball_process::BallProcess;
use rbb_stats::Summary;

/// Per-run progress report over all tokens.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressReport {
    /// Rounds elapsed (`t`).
    pub rounds: u64,
    /// Minimum walk steps over tokens.
    pub min_moves: u64,
    /// Mean walk steps.
    pub mean_moves: f64,
    /// Maximum walk steps (≤ `rounds` by construction).
    pub max_moves: u64,
    /// Maximum single-visit wait over all tokens.
    pub max_wait: u64,
    /// The analytic floor `t / ln n` that `min_moves · c` must exceed.
    pub t_over_ln_n: f64,
}

impl ProgressReport {
    /// Builds the report from a process that has run for some rounds.
    pub fn from_process(p: &BallProcess) -> Self {
        let rounds = p.round();
        let moves = Summary::from_iter(p.ball_stats().iter().map(|s| s.moves as f64));
        let max_wait = p.ball_stats().iter().map(|s| s.max_wait).max().unwrap_or(0);
        let n = p.n() as f64;
        Self {
            rounds,
            min_moves: p.min_progress(),
            mean_moves: moves.mean(),
            max_moves: moves.max() as u64,
            max_wait,
            t_over_ln_n: rounds as f64 / n.ln(),
        }
    }

    /// The progress ratio `min_moves / (t / ln n)`; the paper implies it is
    /// bounded below by a positive constant w.h.p. (FIFO).
    pub fn min_progress_ratio(&self) -> f64 {
        if self.t_over_ln_n == 0.0 {
            return 0.0;
        }
        self.min_moves as f64 / self.t_over_ln_n
    }

    /// Fraction of rounds the *average* token spent moving (vs waiting).
    pub fn mean_duty_cycle(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        self.mean_moves / self.rounds as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbb_core::config::Config;
    use rbb_core::engine::Engine;
    use rbb_core::metrics::NullObserver;
    use rbb_core::rng::Xoshiro256pp;
    use rbb_core::strategy::QueueStrategy;

    fn run_fifo(n: usize, rounds: u64, seed: u64) -> BallProcess {
        let mut p = BallProcess::new(
            Config::one_per_bin(n),
            QueueStrategy::Fifo,
            Xoshiro256pp::seed_from(seed),
        );
        p.run(rounds, NullObserver);
        p
    }

    #[test]
    fn report_basic_consistency() {
        let p = run_fifo(64, 500, 1);
        let r = ProgressReport::from_process(&p);
        assert_eq!(r.rounds, 500);
        assert!(r.min_moves <= r.mean_moves.ceil() as u64);
        assert!(r.mean_moves <= r.max_moves as f64);
        assert!(r.max_moves <= 500);
    }

    #[test]
    fn fifo_min_progress_meets_omega_t_over_log_n() {
        let n = 256;
        let t = 4000;
        let p = run_fifo(n, t, 2);
        let r = ProgressReport::from_process(&p);
        // Ω(t/ln n): ratio must be bounded away from 0 (use 0.5 as a
        // conservative empirical constant; typical value is > 2).
        assert!(
            r.min_progress_ratio() > 0.5,
            "ratio {} too small",
            r.min_progress_ratio()
        );
    }

    #[test]
    fn mean_duty_cycle_in_unit_interval() {
        let p = run_fifo(128, 1000, 3);
        let r = ProgressReport::from_process(&p);
        assert!(r.mean_duty_cycle() > 0.0 && r.mean_duty_cycle() <= 1.0);
        // With m = n the mean duty cycle equals (moved per round)/n, which is
        // the non-empty fraction ≈ 0.586 at equilibrium (see E03).
        assert!(
            (r.mean_duty_cycle() - 0.586).abs() < 0.05,
            "duty {}",
            r.mean_duty_cycle()
        );
    }

    #[test]
    fn zero_round_report() {
        let p = BallProcess::legitimate_start(16, 4);
        let r = ProgressReport::from_process(&p);
        assert_eq!(r.rounds, 0);
        assert_eq!(r.min_progress_ratio(), 0.0);
        assert_eq!(r.mean_duty_cycle(), 0.0);
    }

    #[test]
    fn lifo_can_starve_but_fifo_cannot() {
        // Same seed, same window: FIFO's min progress should never be
        // drastically below LIFO's is possible but LIFO can starve tokens;
        // verify FIFO min progress is positive while LIFO from a deep pile
        // keeps the bottom ball starved.
        let n = 64;
        let mut lifo = BallProcess::new(
            Config::all_in_one(n, n as u32),
            QueueStrategy::Lifo,
            Xoshiro256pp::seed_from(5),
        );
        lifo.run(30, NullObserver);
        // Ball 0 is at the bottom of the pile; with arrivals landing on top
        // it is unlikely to have moved in 30 rounds.
        assert_eq!(
            lifo.ball_stats()[0].moves,
            0,
            "bottom ball starved under LIFO"
        );

        let fifo = run_fifo(n, 2000, 5);
        let r = ProgressReport::from_process(&fifo);
        assert!(r.min_moves > 0);
    }
}
