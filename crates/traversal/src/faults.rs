//! Fault-injected traversal (§4.1): adversarial reassignment every `γ·n`
//! rounds, with cover-time measurement.

use rbb_core::adversary::{Adversary, FaultSchedule};
use rbb_core::rng::Xoshiro256pp;
use rbb_core::strategy::QueueStrategy;

use crate::traversal::Traversal;

/// Result of a faulty traversal run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultyCoverResult {
    /// Parallel cover time (None if the cap was hit).
    pub cover_time: Option<u64>,
    /// Number of faults injected before coverage completed.
    pub faults_injected: u64,
}

/// Runs multi-token traversal with faults every `schedule.period()` rounds;
/// in each faulty round the `adversary` reassigns all tokens.
///
/// Per the paper, with period `γ·n` (`γ ≥ 6`) the `O(n log² n)` cover bound
/// survives with a constant-factor slowdown.
pub fn faulty_cover_time(
    n: usize,
    strategy: QueueStrategy,
    schedule: FaultSchedule,
    adversary: &mut dyn Adversary,
    seed: u64,
    cap: u64,
) -> FaultyCoverResult {
    let mut traversal = Traversal::new(n, strategy, seed);
    let mut adv_rng = Xoshiro256pp::stream(seed, 0xADFE);
    let mut faults = 0u64;
    while !traversal.all_covered() {
        if traversal.round() >= cap {
            return FaultyCoverResult {
                cover_time: None,
                faults_injected: faults,
            };
        }
        traversal.step();
        if schedule.is_faulty(traversal.round()) && !traversal.all_covered() {
            let placement = adversary.placement(
                n,
                traversal.tokens(),
                traversal.process().config(),
                &mut adv_rng,
            );
            traversal.adversarial_reassign(&placement);
            faults += 1;
        }
    }
    FaultyCoverResult {
        cover_time: Some(traversal.round()),
        faults_injected: faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbb_core::adversary::{AllInOneAdversary, RandomAdversary};

    #[test]
    fn fault_free_equals_plain_traversal() {
        // A schedule that never fires within the horizon.
        let n = 32;
        let schedule = FaultSchedule::every(u64::MAX / 2);
        let mut adv = AllInOneAdversary;
        let r = faulty_cover_time(n, QueueStrategy::Fifo, schedule, &mut adv, 1, 10_000_000);
        assert!(r.cover_time.is_some());
        assert_eq!(r.faults_injected, 0);
    }

    #[test]
    fn faults_are_injected_and_coverage_still_completes() {
        let n = 32;
        // γ = 6 — the paper's threshold.
        let schedule = FaultSchedule::gamma_n(6, n);
        let mut adv = AllInOneAdversary;
        let r = faulty_cover_time(n, QueueStrategy::Fifo, schedule, &mut adv, 2, 10_000_000);
        assert!(r.cover_time.is_some(), "coverage must survive γ=6 faults");
        assert!(r.faults_injected >= 1, "horizon long enough for faults");
    }

    #[test]
    fn adversarial_slowdown_is_bounded() {
        let n = 48;
        let mut adv = AllInOneAdversary;
        let clean = faulty_cover_time(
            n,
            QueueStrategy::Fifo,
            FaultSchedule::every(u64::MAX / 2),
            &mut adv,
            3,
            10_000_000,
        )
        .cover_time
        .unwrap();
        let faulty = faulty_cover_time(
            n,
            QueueStrategy::Fifo,
            FaultSchedule::gamma_n(6, n),
            &mut adv,
            3,
            10_000_000,
        )
        .cover_time
        .unwrap();
        // Constant-factor slowdown (generous bound for small n).
        assert!(
            faulty < 20 * clean + 1000,
            "faulty {faulty} vs clean {clean}"
        );
    }

    #[test]
    fn random_adversary_is_benign() {
        let n = 32;
        let mut adv = RandomAdversary;
        let r = faulty_cover_time(
            n,
            QueueStrategy::Fifo,
            FaultSchedule::gamma_n(6, n),
            &mut adv,
            4,
            10_000_000,
        );
        assert!(r.cover_time.is_some());
    }

    #[test]
    fn cap_reports_faults() {
        let n = 64;
        let mut adv = AllInOneAdversary;
        let r = faulty_cover_time(
            n,
            QueueStrategy::Fifo,
            FaultSchedule::every(10),
            &mut adv,
            5,
            100,
        );
        // Faults every 10 rounds on a 100-round cap: likely cannot cover.
        assert_eq!(r.cover_time, None);
        assert!(r.faults_injected >= 9);
    }
}
