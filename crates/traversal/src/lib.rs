//! # rbb-traversal — multi-token traversal on the clique
//!
//! The application the paper motivates (Section 1.1, Section 4): `n` tokens
//! (resources/tasks) each performing a delayed random walk under the
//! one-release-per-node-per-round constraint must visit all `n` nodes in
//! mutual exclusion. Corollary 1 bounds the parallel cover time by
//! `O(n log² n)` w.h.p.; §4.1 shows resilience to adversarial reassignment
//! faults at frequency `≤ 1/(γn)`, `γ ≥ 6`.
//!
//! * [`traversal`] — the traversal engine with per-token visited bitsets and
//!   the single-token baseline.
//! * [`progress`] — the `Ω(t/log n)` per-token progress accounting.
//! * [`faults`] — fault-injected cover-time runs.
//! * [`bitset`] — the word-packed visited-set implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod delays;
pub mod faults;
pub mod progress;
pub mod traversal;

pub use bitset::FixedBitSet;
pub use delays::{record_delays, record_delays_exact, DelayRecorder};
pub use faults::{faulty_cover_time, FaultyCoverResult};
pub use progress::ProgressReport;
pub use traversal::{single_token_cover_time, Traversal};
