//! Per-visit queueing-delay distributions.
//!
//! Under FIFO a token's wait at a bin equals the load it saw on arrival, so
//! Theorem 1(a) caps every wait at `O(log n)` w.h.p. — the mechanism behind
//! both the progress bound and the cover time. [`DelayRecorder`] collects
//! the exact distribution of waits by replaying a [`BallProcess`] with a
//! per-move hook, attributing each move's wait to a histogram.

use rbb_core::ball_process::BallProcess;
use rbb_stats::IntHistogram;

/// Distribution of per-visit waits collected over a run.
#[derive(Debug, Clone, Default)]
pub struct DelayRecorder {
    histogram: IntHistogram,
}

impl DelayRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `process` for `rounds` rounds, recording every completed visit's
    /// *positive* wait (rounds between arrival and selection).
    ///
    /// Implementation note: a ball selected at round `r` that arrived at
    /// round `a` waited `r − 1 − a` full rounds; this is exactly the
    /// increment the engine adds to `total_wait`, so we recover each visit's
    /// wait from consecutive `total_wait` values. Zero-wait visits are
    /// invisible in this delta view — use [`record_delays_exact`] for the
    /// full distribution including zeros.
    pub fn record(&mut self, process: &mut BallProcess, rounds: u64) {
        let mut prev_waits: Vec<u64> = process.ball_stats().iter().map(|s| s.total_wait).collect();
        for _ in 0..rounds {
            process.step();
            for (ball, stat) in process.ball_stats().iter().enumerate() {
                let delta = stat.total_wait - prev_waits[ball];
                if delta > 0 {
                    self.histogram.add(delta as usize);
                    prev_waits[ball] = stat.total_wait;
                }
            }
        }
    }

    /// The wait histogram (value = rounds waited on one visit).
    pub fn histogram(&self) -> &IntHistogram {
        &self.histogram
    }
}

/// Convenience: runs a fresh recorder over the process.
pub fn record_delays(process: &mut BallProcess, rounds: u64) -> IntHistogram {
    let mut rec = DelayRecorder::new();
    rec.record(process, rounds);
    rec.histogram.clone()
}

/// Collects per-visit waits exactly via the move hook: each move at round
/// `r` of a ball that arrived at `a` completed a wait of `r − 1 − a`.
/// This variant counts *every* move (including zero waits), which is the
/// distribution the FIFO analysis speaks about.
pub fn record_delays_exact(process: &mut BallProcess, rounds: u64) -> IntHistogram {
    // Track arrival rounds locally (balls start "arrived at round 0").
    let m = process.balls() as usize;
    let mut arrival = vec![process.round(); m];
    let mut hist = IntHistogram::new();
    for _ in 0..rounds {
        let arrivals = &mut arrival;
        let hist_ref = &mut hist;
        process.step_with(|ball, _dest, round| {
            let wait = round - 1 - arrivals[ball as usize];
            hist_ref.add(wait as usize);
            arrivals[ball as usize] = round;
        });
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbb_core::config::Config;
    use rbb_core::engine::Engine;
    use rbb_core::rng::Xoshiro256pp;
    use rbb_core::strategy::QueueStrategy;

    fn fifo(n: usize, seed: u64) -> BallProcess {
        BallProcess::new(
            Config::one_per_bin(n),
            QueueStrategy::Fifo,
            Xoshiro256pp::seed_from(seed),
        )
    }

    #[test]
    fn exact_recorder_counts_every_move() {
        let n = 64;
        let mut p = fifo(n, 1);
        let hist = record_delays_exact(&mut p, 100);
        let total_moves: u64 = p.ball_stats().iter().map(|s| s.moves).sum();
        assert_eq!(hist.total(), total_moves);
    }

    #[test]
    fn fifo_waits_are_logarithmic() {
        let n = 512;
        let mut p = fifo(n, 2);
        p.run(2000, rbb_core::metrics::NullObserver);
        let hist = record_delays_exact(&mut p, 20_000);
        let max_wait = hist.max_value().unwrap_or(0);
        let ln_n = (n as f64).ln();
        assert!(
            (max_wait as f64) < 4.0 * ln_n,
            "max wait {max_wait} vs ln n {ln_n}"
        );
        // Most visits wait little: median wait ≤ 2.
        assert!(hist.quantile(0.5).unwrap() <= 2);
    }

    #[test]
    fn wait_distribution_mean_matches_engine_accounting() {
        let n = 128;
        let mut p = fifo(n, 3);
        let hist = record_delays_exact(&mut p, 5_000);
        let total_wait_engine: u64 = p.ball_stats().iter().map(|s| s.total_wait).sum();
        let total_wait_hist: u64 = hist
            .counts()
            .iter()
            .enumerate()
            .map(|(w, &c)| w as u64 * c)
            .sum();
        // The histogram misses only waits of visits still in progress.
        let in_progress_bound = 5_000u64 * n as u64;
        assert!(total_wait_engine >= total_wait_hist);
        assert!(total_wait_engine - total_wait_hist < in_progress_bound);
    }

    #[test]
    fn lifo_produces_heavier_tail_than_fifo() {
        let n = 256;
        let rounds = 20_000;
        let mut f = fifo(n, 4);
        f.run(1000, rbb_core::metrics::NullObserver);
        let fifo_hist = record_delays_exact(&mut f, rounds);
        let mut l = BallProcess::new(
            Config::one_per_bin(n),
            QueueStrategy::Lifo,
            Xoshiro256pp::seed_from(4),
        );
        l.run(1000, rbb_core::metrics::NullObserver);
        let lifo_hist = record_delays_exact(&mut l, rounds);
        // LIFO's extreme waits exceed FIFO's (buried balls starve).
        assert!(
            lifo_hist.max_value().unwrap() > fifo_hist.max_value().unwrap(),
            "lifo {:?} vs fifo {:?}",
            lifo_hist.max_value(),
            fifo_hist.max_value()
        );
    }

    #[test]
    fn delta_recorder_agrees_with_exact_on_totals() {
        let n = 64;
        let rounds = 2_000;
        let mut p1 = fifo(n, 5);
        let h1 = record_delays(&mut p1, rounds);
        let mut p2 = fifo(n, 5);
        let h2 = record_delays_exact(&mut p2, rounds);
        // Same seed → same trajectory; the exact recorder also counts
        // zero-wait visits, so totals differ but weighted sums agree.
        let weighted = |h: &IntHistogram| -> u64 {
            h.counts()
                .iter()
                .enumerate()
                .map(|(w, &c)| w as u64 * c)
                .sum()
        };
        assert_eq!(weighted(&h1), weighted(&h2));
    }
}
