//! Integer-valued histograms for load distributions.

/// A dense histogram over non-negative integers (loads, delays, counts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl IntHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation of value `v`.
    pub fn add(&mut self, v: usize) {
        if v >= self.counts.len() {
            self.counts.resize(v + 1, 0);
        }
        self.counts[v] += 1;
        self.total += 1;
    }

    /// Adds `w` observations of value `v`.
    pub fn add_weighted(&mut self, v: usize, w: u64) {
        if w == 0 {
            return;
        }
        if v >= self.counts.len() {
            self.counts.resize(v + 1, 0);
        }
        self.counts[v] += w;
        self.total += w;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &IntHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count at value `v`.
    pub fn count(&self, v: usize) -> u64 {
        self.counts.get(v).copied().unwrap_or(0)
    }

    /// Largest observed value (None if empty).
    pub fn max_value(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Empirical probability mass at `v`.
    pub fn pmf(&self, v: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(v) as f64 / self.total as f64
        }
    }

    /// Empirical `P(X ≥ v)`.
    pub fn tail(&self, v: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let above: u64 = self.counts.iter().skip(v).sum();
        above as f64 / self.total as f64
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// The raw dense counts (index = value).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Exact integer quantile: the smallest `v` with `P(X ≤ v) ≥ q`.
    pub fn quantile(&self, q: f64) -> Option<usize> {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (v, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(v);
            }
        }
        self.max_value()
    }
}

impl FromIterator<usize> for IntHistogram {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut h = Self::new();
        for v in iter {
            h.add(v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = IntHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_value(), None);
        assert_eq!(h.pmf(3), 0.0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn add_and_count() {
        let h: IntHistogram = [1usize, 1, 2, 5].into_iter().collect();
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.max_value(), Some(5));
    }

    #[test]
    fn pmf_and_tail() {
        let h: IntHistogram = [0usize, 0, 1, 3].into_iter().collect();
        assert!((h.pmf(0) - 0.5).abs() < 1e-12);
        assert!((h.tail(1) - 0.5).abs() < 1e-12);
        assert!((h.tail(0) - 1.0).abs() < 1e-12);
        assert_eq!(h.tail(4), 0.0);
    }

    #[test]
    fn mean_is_weighted_average() {
        let mut h = IntHistogram::new();
        h.add_weighted(2, 3);
        h.add_weighted(6, 1);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a: IntHistogram = [1usize, 2].into_iter().collect();
        let b: IntHistogram = [2usize, 3, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.count(3), 2);
        assert_eq!(a.max_value(), Some(3));
    }

    #[test]
    fn quantile_small_cases() {
        let h: IntHistogram = [1usize, 2, 3, 4].into_iter().collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(1.0), Some(4));
    }

    #[test]
    fn add_weighted_zero_is_noop() {
        let mut h = IntHistogram::new();
        h.add_weighted(5, 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_value(), None);
    }
}
