//! Goodness-of-fit statistics for checking empirical laws against exact
//! (enumerative) distributions — the machinery behind the theory-conformance
//! test suite, which compares ensemble estimates to the stationary law of
//! `rbb_core::exact::ExactChain` and to the paper's Chernoff envelopes.

/// Pearson's chi-square statistic `Σ (O_i − E_i)² / E_i` between observed
/// counts and expected probabilities. Cells with `expected[i] == 0` must
/// carry no observations (panics otherwise: mass on an impossible state is
/// a modeling bug, not a sampling fluctuation). Shorter vectors are
/// implicitly zero-padded.
pub fn chi_square_stat(observed: &[u64], expected: &[f64]) -> f64 {
    let total: u64 = observed.iter().sum();
    assert!(total > 0, "chi-square needs at least one observation");
    let len = observed.len().max(expected.len());
    let get_o = |i: usize| observed.get(i).copied().unwrap_or(0);
    let get_e = |i: usize| expected.get(i).copied().unwrap_or(0.0);
    (0..len)
        .map(|i| {
            let o = get_o(i) as f64;
            let e = get_e(i) * total as f64;
            if e == 0.0 {
                assert!(
                    o == 0.0,
                    "observed mass on a state with zero expected probability (cell {i})"
                );
                0.0
            } else {
                (o - e) * (o - e) / e
            }
        })
        .sum()
}

/// Pools cells whose expected count `n·p_i` falls below `min_expected` into
/// one tail cell, returning `(observed, expected)` ready for
/// [`chi_square_stat`]. The classical chi-square approximation wants every
/// expected cell count at least ~5; exact chains over tiny state spaces have
/// long thin tails that need pooling first.
pub fn pool_cells(observed: &[u64], expected: &[f64], min_expected: f64) -> (Vec<u64>, Vec<f64>) {
    let total: u64 = observed.iter().sum();
    assert!(total > 0, "pooling needs at least one observation");
    let len = observed.len().max(expected.len());
    let mut out_o = Vec::new();
    let mut out_e = Vec::new();
    let mut pool_o = 0u64;
    let mut pool_e = 0.0;
    for i in 0..len {
        let o = observed.get(i).copied().unwrap_or(0);
        let e = expected.get(i).copied().unwrap_or(0.0);
        if e * total as f64 >= min_expected {
            out_o.push(o);
            out_e.push(e);
        } else {
            pool_o += o;
            pool_e += e;
        }
    }
    if pool_e > 0.0 || pool_o > 0 {
        out_o.push(pool_o);
        out_e.push(pool_e);
    }
    (out_o, out_e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_square_zero_for_exact_match() {
        // 100 observations split exactly as expected.
        let observed = [25u64, 50, 25];
        let expected = [0.25, 0.5, 0.25];
        assert!(chi_square_stat(&observed, &expected).abs() < 1e-12);
    }

    #[test]
    fn chi_square_known_value() {
        // O = [10, 30], E = [0.5, 0.5] over 40: (10-20)²/20 + (30-20)²/20 = 10.
        let got = chi_square_stat(&[10, 30], &[0.5, 0.5]);
        assert!((got - 10.0).abs() < 1e-12);
    }

    #[test]
    fn chi_square_pads_shorter_vectors() {
        // Expected has a third cell the observations never hit: E_3 = 0.2·50
        // = 10, O_3 = 0 contributes 10.
        let got = chi_square_stat(&[20, 30], &[0.4, 0.4, 0.2]);
        assert!(got > 9.99);
    }

    #[test]
    #[should_panic(expected = "zero expected probability")]
    fn chi_square_rejects_impossible_mass() {
        chi_square_stat(&[1, 1], &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn chi_square_rejects_empty() {
        chi_square_stat(&[0, 0], &[0.5, 0.5]);
    }

    #[test]
    fn pooling_collects_thin_cells() {
        // 100 observations; cells below expected count 5 (p < 0.05) pool.
        let observed = [60u64, 30, 4, 3, 2, 1];
        let expected = [0.6, 0.3, 0.04, 0.03, 0.02, 0.01];
        let (o, e) = pool_cells(&observed, &expected, 5.0);
        assert_eq!(o, vec![60, 30, 10]);
        assert!((e[2] - 0.1).abs() < 1e-12);
        assert_eq!(o.iter().sum::<u64>(), 100);
        assert!((e.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // The pooled table is chi-square ready.
        let stat = chi_square_stat(&o, &e);
        assert!(stat.abs() < 1e-12);
    }

    #[test]
    fn pooling_keeps_everything_when_cells_are_fat() {
        let observed = [50u64, 50];
        let expected = [0.5, 0.5];
        let (o, e) = pool_cells(&observed, &expected, 5.0);
        assert_eq!(o, observed.to_vec());
        assert_eq!(e, expected.to_vec());
    }
}
