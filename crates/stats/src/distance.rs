//! Distances between probability distributions.
//!
//! Total variation distance is the paper's implicit yardstick for
//! "forgetting the initial configuration": experiment E21 computes exact TV
//! decay to stationarity for small `n` via the enumerative kernel, and
//! empirical TV between max-load distributions from different starts.

/// Total variation distance between two finite distributions given as
/// aligned probability vectors: `½ Σ |p_i − q_i|`. Shorter vectors are
/// implicitly zero-padded.
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    let len = p.len().max(q.len());
    let get = |v: &[f64], i: usize| v.get(i).copied().unwrap_or(0.0);
    (0..len).map(|i| (get(p, i) - get(q, i)).abs()).sum::<f64>() / 2.0
}

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats. Terms with `p_i = 0`
/// contribute 0; a `p_i > 0` against `q_i = 0` yields `f64::INFINITY`.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    let len = p.len().max(q.len());
    let get = |v: &[f64], i: usize| v.get(i).copied().unwrap_or(0.0);
    (0..len)
        .map(|i| {
            let pi = get(p, i);
            let qi = get(q, i);
            if pi == 0.0 {
                0.0
            } else if qi == 0.0 {
                f64::INFINITY
            } else {
                pi * (pi / qi).ln()
            }
        })
        .sum()
}

/// Normalizes raw counts into a probability vector. Panics on zero total.
pub fn normalize(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "cannot normalize an empty histogram");
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tv_identical_is_zero() {
        let p = [0.25, 0.5, 0.25];
        assert_eq!(tv_distance(&p, &p), 0.0);
    }

    #[test]
    fn tv_disjoint_is_one() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((tv_distance(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tv_is_symmetric_and_padded() {
        let p = [0.5, 0.5];
        let q = [0.5, 0.25, 0.25];
        let d1 = tv_distance(&p, &q);
        let d2 = tv_distance(&q, &p);
        assert!((d1 - d2).abs() < 1e-15);
        assert!((d1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.3, 0.7];
        assert!(kl_divergence(&p, &p).abs() < 1e-15);
    }

    #[test]
    fn kl_infinite_on_unsupported_mass() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert!(kl_divergence(&p, &q).is_infinite());
    }

    #[test]
    fn kl_nonnegative() {
        let p = [0.2, 0.3, 0.5];
        let q = [0.4, 0.4, 0.2];
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn normalize_sums_to_one() {
        let n = normalize(&[1, 2, 7]);
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((n[2] - 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn normalize_rejects_zero_total() {
        normalize(&[0, 0]);
    }
}
