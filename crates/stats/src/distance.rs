//! Distances between probability distributions.
//!
//! Total variation distance is the paper's implicit yardstick for
//! "forgetting the initial configuration": experiment E21 computes exact TV
//! decay to stationarity for small `n` via the enumerative kernel, and
//! empirical TV between max-load distributions from different starts.

/// Total variation distance between two finite distributions given as
/// aligned probability vectors: `½ Σ |p_i − q_i|`. Shorter vectors are
/// implicitly zero-padded.
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    let len = p.len().max(q.len());
    let get = |v: &[f64], i: usize| v.get(i).copied().unwrap_or(0.0);
    (0..len).map(|i| (get(p, i) - get(q, i)).abs()).sum::<f64>() / 2.0
}

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats. Terms with `p_i = 0`
/// contribute 0; a `p_i > 0` against `q_i = 0` yields `f64::INFINITY`.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    let len = p.len().max(q.len());
    let get = |v: &[f64], i: usize| v.get(i).copied().unwrap_or(0.0);
    (0..len)
        .map(|i| {
            let pi = get(p, i);
            let qi = get(q, i);
            if pi == 0.0 {
                0.0
            } else if qi == 0.0 {
                f64::INFINITY
            } else {
                // Guarded log: when the masses are within 2× of each other,
                // `p_i − q_i` is exact (Sterbenz) and ln_1p of the relative
                // difference keeps near-identical divergences at full
                // precision — the naive ratio rounds toward 1 before the
                // log, burying terms of order |p_i − q_i| and letting the
                // sum go negative. Outside that window the subtraction
                // itself cancels (and for p_i ≪ q_i would round to −q_i,
                // sending ln_1p to −∞), so the plain ratio form is the
                // accurate one there.
                let ratio = pi / qi;
                if (0.5..=2.0).contains(&ratio) {
                    pi * ((pi - qi) / qi).ln_1p()
                } else {
                    pi * ratio.ln()
                }
            }
        })
        .sum()
}

/// Normalizes raw counts into a probability vector. Panics on zero total.
pub fn normalize(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "cannot normalize an empty histogram");
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tv_identical_is_zero() {
        let p = [0.25, 0.5, 0.25];
        assert_eq!(tv_distance(&p, &p), 0.0);
    }

    #[test]
    fn tv_disjoint_is_one() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((tv_distance(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tv_is_symmetric_and_padded() {
        let p = [0.5, 0.5];
        let q = [0.5, 0.25, 0.25];
        let d1 = tv_distance(&p, &q);
        let d2 = tv_distance(&q, &p);
        assert!((d1 - d2).abs() < 1e-15);
        assert!((d1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.3, 0.7];
        assert!(kl_divergence(&p, &p).abs() < 1e-15);
    }

    #[test]
    fn kl_infinite_on_unsupported_mass() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert!(kl_divergence(&p, &q).is_infinite());
    }

    #[test]
    fn kl_nonnegative() {
        let p = [0.2, 0.3, 0.5];
        let q = [0.4, 0.4, 0.2];
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn kl_near_identical_distributions_keeps_full_precision() {
        // KL(p‖q) ≈ Σ (p_i − q_i)²/(2 q_i) for q near p: with d = 1e-12
        // perturbations on a fair coin the true value is 2d² = 2e-24.
        // The naive ratio form rounds p_i/q_i to ~1e-16 before the log,
        // burying the answer (and sometimes turning it negative); the
        // ln_1p form recovers it to a few parts in 1e4.
        let d = 1e-12;
        let p = [0.5, 0.5];
        let q = [0.5 + d, 0.5 - d];
        let kl = kl_divergence(&p, &q);
        assert!(kl > 0.0, "near-identical KL went non-positive: {kl}");
        let expected = 2.0 * d * d;
        assert!(
            (kl / expected - 1.0).abs() < 1e-3,
            "kl {kl} vs expected {expected}"
        );
    }

    #[test]
    fn kl_tiny_reference_mass_is_finite_and_large() {
        // p_i / q_i huge: the relative-difference argument is ~1e300 and
        // ln_1p must not overflow or lose the ln(p/q) asymptote.
        let p = [1.0 - 1e-300, 1e-300];
        let q = [1e-300, 1.0 - 1e-300];
        let kl = kl_divergence(&p, &q);
        assert!(kl.is_finite());
        assert!((kl - 690.7755).abs() < 1e-3, "kl {kl}");
    }

    #[test]
    fn normalize_sums_to_one() {
        let n = normalize(&[1, 2, 7]);
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((n[2] - 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn normalize_rejects_zero_total() {
        normalize(&[0, 0]);
    }
}
