//! Mergeable streaming accumulators for ensemble runs.
//!
//! An ensemble folds thousands of per-trial metric values into a constant
//! amount of state: a Welford [`Summary`] for moments, an [`IntHistogram`]
//! for exact quantiles and tails (kept only while every observation is a
//! small non-negative integer), and an [`ExceedanceCounter`] for
//! w.h.p.-event tail probabilities with Wilson intervals. All three merge
//! associatively, so partial accumulators built on different workers
//! combine into the same totals as a single sequential pass.

use crate::ci::{wilson_ci, ConfidenceInterval};
use crate::histogram::IntHistogram;
use crate::summary::Summary;

/// Largest value the exact-quantile histogram will track. Metrics whose
/// observations exceed this (or are negative / fractional) fall back to
/// moment-only summaries — the histogram is dropped rather than resized
/// without bound.
const HISTOGRAM_CAP: f64 = 16_777_216.0; // 2^24

/// Counts, per threshold, how many observations were `>=` that threshold.
///
/// This is the estimator behind every "tail probability" column: the
/// empirical `P(X >= t)` together with a Wilson score interval, which stays
/// honest at the 0-and-1 boundary where w.h.p. events live.
#[derive(Debug, Clone, PartialEq)]
pub struct ExceedanceCounter {
    thresholds: Vec<f64>,
    exceed: Vec<u64>,
    observations: u64,
}

impl ExceedanceCounter {
    /// A counter over the given thresholds (any order, duplicates allowed).
    pub fn new(thresholds: Vec<f64>) -> Self {
        let exceed = vec![0; thresholds.len()];
        Self {
            thresholds,
            exceed,
            observations: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.observations += 1;
        for (t, c) in self.thresholds.iter().zip(&mut self.exceed) {
            if x >= *t {
                *c += 1;
            }
        }
    }

    /// Merges another counter. Panics if the threshold lists differ.
    pub fn merge(&mut self, other: &ExceedanceCounter) {
        assert_eq!(
            self.thresholds, other.thresholds,
            "cannot merge exceedance counters over different thresholds"
        );
        for (a, &b) in self.exceed.iter_mut().zip(&other.exceed) {
            *a += b;
        }
        self.observations += other.observations;
    }

    /// The thresholds, in construction order.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// Total observations pushed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Raw exceedance count for threshold index `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.exceed[i]
    }

    /// Empirical `P(X >= thresholds[i])` (0 when empty).
    pub fn tail(&self, i: usize) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.exceed[i] as f64 / self.observations as f64
        }
    }

    /// Wilson interval for the tail probability at threshold index `i`.
    /// Returns `None` when no observations were pushed.
    pub fn wilson(&self, i: usize, level: f64) -> Option<ConfidenceInterval> {
        if self.observations == 0 {
            return None;
        }
        Some(wilson_ci(self.exceed[i], self.observations, level))
    }
}

/// The complete streaming state for one ensemble metric: moments, an exact
/// integer histogram (while representable), and tail counters.
///
/// Memory is bounded by the largest observed integer value (for the
/// histogram) and the threshold count — never by the number of
/// observations, so a 10k-seed ensemble aggregates online.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricAccumulator {
    summary: Summary,
    /// Exact distribution, kept only while every observation is a
    /// non-negative integer below [`HISTOGRAM_CAP`].
    histogram: Option<IntHistogram>,
    exceedance: ExceedanceCounter,
    /// Observations that carried no value (e.g. a stop condition that was
    /// never met within the horizon).
    missing: u64,
}

impl MetricAccumulator {
    /// An empty accumulator with tail counters at `thresholds`.
    pub fn new(thresholds: Vec<f64>) -> Self {
        Self {
            summary: Summary::new(),
            histogram: Some(IntHistogram::new()),
            exceedance: ExceedanceCounter::new(thresholds),
            missing: 0,
        }
    }

    /// Folds one per-trial observation in; `None` counts as missing.
    pub fn push(&mut self, x: Option<f64>) {
        let Some(x) = x else {
            self.missing += 1;
            return;
        };
        self.summary.push(x);
        self.exceedance.push(x);
        if let Some(h) = &mut self.histogram {
            if x >= 0.0 && x.fract() == 0.0 && x < HISTOGRAM_CAP {
                h.add(x as usize);
            } else {
                // A single non-integer observation demotes the metric to
                // moment/tail-only reporting, for good.
                self.histogram = None;
            }
        }
    }

    /// Merges another accumulator (associative; both orders agree up to
    /// floating-point rounding in the moments).
    pub fn merge(&mut self, other: &MetricAccumulator) {
        self.summary.merge(&other.summary);
        self.exceedance.merge(&other.exceedance);
        self.missing += other.missing;
        match (&mut self.histogram, &other.histogram) {
            (Some(a), Some(b)) => a.merge(b),
            _ => self.histogram = None,
        }
    }

    /// Moments over the present observations.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// The exact histogram, if every observation so far was a small
    /// non-negative integer.
    pub fn histogram(&self) -> Option<&IntHistogram> {
        self.histogram.as_ref().filter(|h| h.total() > 0)
    }

    /// Tail counters.
    pub fn exceedance(&self) -> &ExceedanceCounter {
        &self.exceedance
    }

    /// Observations pushed as `None`.
    pub fn missing(&self) -> u64 {
        self.missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exceedance_counts_at_and_above_threshold() {
        let mut c = ExceedanceCounter::new(vec![2.0, 5.0]);
        for x in [1.0, 2.0, 3.0, 5.0] {
            c.push(x);
        }
        assert_eq!(c.observations(), 4);
        assert_eq!(c.count(0), 3); // 2, 3, 5
        assert_eq!(c.count(1), 1); // 5
        assert!((c.tail(0) - 0.75).abs() < 1e-12);
        let ci = c.wilson(1, 0.95).unwrap();
        assert!(ci.contains(0.25));
    }

    #[test]
    fn exceedance_merge_matches_sequential() {
        let xs: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
        let mut all = ExceedanceCounter::new(vec![3.0]);
        let mut a = ExceedanceCounter::new(vec![3.0]);
        let mut b = ExceedanceCounter::new(vec![3.0]);
        for (i, &x) in xs.iter().enumerate() {
            all.push(x);
            if i < 13 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    #[should_panic(expected = "confidence level must be in (0, 1), got 1")]
    fn exceedance_wilson_rejects_out_of_range_level() {
        // Regression: this used to surface as an opaque "probit domain is
        // (0, 1)" panic from deep inside the quantile approximation.
        let mut c = ExceedanceCounter::new(vec![1.0]);
        c.push(2.0);
        let _ = c.wilson(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "different thresholds")]
    fn exceedance_merge_rejects_mismatched_thresholds() {
        let mut a = ExceedanceCounter::new(vec![1.0]);
        let b = ExceedanceCounter::new(vec![2.0]);
        a.merge(&b);
    }

    #[test]
    fn empty_exceedance_has_no_interval() {
        let c = ExceedanceCounter::new(vec![1.0]);
        assert_eq!(c.tail(0), 0.0);
        assert!(c.wilson(0, 0.95).is_none());
    }

    #[test]
    fn accumulator_tracks_moments_histogram_and_tails() {
        let mut acc = MetricAccumulator::new(vec![4.0]);
        for x in [2.0, 3.0, 4.0, 7.0] {
            acc.push(Some(x));
        }
        acc.push(None);
        assert_eq!(acc.summary().count(), 4);
        assert_eq!(acc.missing(), 1);
        assert!((acc.summary().mean() - 4.0).abs() < 1e-12);
        let h = acc.histogram().expect("all-integer metric");
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(acc.exceedance().count(0), 2);
    }

    #[test]
    fn fractional_observation_demotes_histogram_permanently() {
        let mut acc = MetricAccumulator::new(vec![]);
        acc.push(Some(1.0));
        acc.push(Some(2.5));
        acc.push(Some(3.0));
        assert!(acc.histogram().is_none());
        assert_eq!(acc.summary().count(), 3);
    }

    #[test]
    fn oversized_and_negative_values_also_demote() {
        let mut acc = MetricAccumulator::new(vec![]);
        acc.push(Some(HISTOGRAM_CAP));
        assert!(acc.histogram().is_none());
        let mut acc = MetricAccumulator::new(vec![]);
        acc.push(Some(-1.0));
        assert!(acc.histogram().is_none());
    }

    #[test]
    fn accumulator_merge_matches_sequential_fold() {
        let xs: Vec<Option<f64>> = (0..50)
            .map(|i| {
                if i % 9 == 0 {
                    None
                } else {
                    Some((i % 11) as f64)
                }
            })
            .collect();
        let mut all = MetricAccumulator::new(vec![5.0]);
        let mut a = MetricAccumulator::new(vec![5.0]);
        let mut b = MetricAccumulator::new(vec![5.0]);
        for (i, &x) in xs.iter().enumerate() {
            all.push(x);
            if i < 17 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.summary().count(), all.summary().count());
        assert!((a.summary().mean() - all.summary().mean()).abs() < 1e-12);
        assert!((a.summary().variance() - all.summary().variance()).abs() < 1e-10);
        assert_eq!(a.histogram(), all.histogram());
        assert_eq!(a.exceedance(), all.exceedance());
        assert_eq!(a.missing(), all.missing());
    }

    #[test]
    fn merge_with_demoted_histogram_demotes() {
        let mut a = MetricAccumulator::new(vec![]);
        a.push(Some(1.0));
        let mut b = MetricAccumulator::new(vec![]);
        b.push(Some(0.5));
        a.merge(&b);
        assert!(a.histogram().is_none());
        assert_eq!(a.summary().count(), 2);
    }
}
