//! Streaming summary statistics (Welford's online algorithm).

/// Single-pass mean/variance/min/max accumulator.
///
/// Numerically stable (Welford); merging two summaries is exact up to
/// floating-point rounding (parallel-friendly, used by the rayon harness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (Chan et al. parallel update).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Minimum observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn known_values() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_slice(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all = Summary::from_slice(&xs);
        let mut a = Summary::from_slice(&xs[..37]);
        let b = Summary::from_slice(&xs[37..]);
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::from_slice(&[1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn std_error_shrinks_with_n() {
        let small = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let mut big = Summary::new();
        for _ in 0..25 {
            for x in [1.0, 2.0, 3.0, 4.0] {
                big.push(x);
            }
        }
        assert!(big.std_error() < small.std_error());
    }

    #[test]
    fn from_iterator() {
        let s: Summary = (1..=5).map(|i| i as f64).collect();
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }
}
