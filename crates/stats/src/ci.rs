//! Confidence intervals: normal-approximation for means, Wilson for
//! proportions (the w.h.p. event estimators of the experiment suite).

use crate::summary::Summary;

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// Nominal coverage, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    pub fn center(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Rejects out-of-range confidence levels at the public CI constructors with
/// an actionable message, instead of letting them fall through to `probit`'s
/// opaque "probit domain is (0, 1)" panic (reached via `0.5 + level/2`, so
/// the reported domain did not even match the caller's argument).
#[inline]
fn assert_level(level: f64) {
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0, 1), got {level}"
    );
}

/// Standard normal quantile for common levels (two-sided).
fn z_for_level(level: f64) -> f64 {
    // Dispatch over the levels experiments actually use; fall back to a
    // rational approximation of the probit elsewhere.
    match level {
        l if (l - 0.90).abs() < 1e-9 => 1.6448536269514722,
        l if (l - 0.95).abs() < 1e-9 => 1.959963984540054,
        l if (l - 0.99).abs() < 1e-9 => 2.5758293035489004,
        _ => probit(0.5 + level / 2.0),
    }
}

/// Acklam's rational approximation to the standard normal quantile.
/// Max absolute error ~1.15e-9 — ample for CI construction.
// The coefficients are Acklam's published values verbatim; keep every digit
// so they can be checked against the source.
#[allow(clippy::excessive_precision)]
pub fn probit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit domain is (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Audited complement: for p ≥ 0.5 the subtraction `1.0 - p` is
        // exact (Sterbenz lemma), so reflecting the upper tail onto the
        // lower-tail branch loses nothing. The quantile near 1 is still
        // ill-conditioned in p itself; callers with a tail probability in
        // hand should pass it to the lower tail directly.
        -probit(1.0 - p)
    }
}

/// Normal-approximation CI for a mean from a [`Summary`].
///
/// Panics if `level` is not strictly inside `(0, 1)`.
pub fn mean_ci(summary: &Summary, level: f64) -> ConfidenceInterval {
    assert_level(level);
    let z = z_for_level(level);
    let half = z * summary.std_error();
    ConfidenceInterval {
        lo: summary.mean() - half,
        hi: summary.mean() + half,
        level,
    }
}

/// Wilson score interval for a binomial proportion: robust near 0 and 1,
/// which is exactly where w.h.p. event frequencies live.
///
/// Panics if `level` is not strictly inside `(0, 1)` (this also guards
/// `ExceedanceCounter::wilson`, which delegates here).
pub fn wilson_ci(successes: u64, trials: u64, level: f64) -> ConfidenceInterval {
    assert!(trials > 0, "wilson_ci needs at least one trial");
    assert!(successes <= trials);
    assert_level(level);
    let z = z_for_level(level);
    let n = trials as f64;
    let p = successes as f64 / n;
    // Exact complement from the integer counts: `1.0 - p` inherits the
    // rounding of `p`, which near p = 1 wipes out the failure probability
    // (e.g. 1 failure in 1e12 trials) and collapses the variance term.
    let q = (trials - successes) as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * ((p * q + z2 / (4.0 * n)) / n).sqrt() / denom;
    ConfidenceInterval {
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probit_known_values() {
        assert!((probit(0.5)).abs() < 1e-8);
        assert!((probit(0.975) - 1.959964).abs() < 1e-5);
        assert!((probit(0.025) + 1.959964).abs() < 1e-5);
        assert!((probit(0.999) - 3.090232).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn probit_rejects_bounds() {
        probit(0.0);
    }

    #[test]
    fn mean_ci_covers_true_mean() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let ci = mean_ci(&s, 0.95);
        assert!(ci.contains(3.0));
        assert!(ci.lo < 3.0 && ci.hi > 3.0);
        assert!((ci.center() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_ci_narrows_with_more_data() {
        let small = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let big: Summary = (0..300).map(|i| (i % 3) as f64 + 1.0).collect();
        assert!(mean_ci(&big, 0.95).width() < mean_ci(&small, 0.95).width());
    }

    #[test]
    fn wilson_all_successes_stays_in_unit() {
        let ci = wilson_ci(100, 100, 0.95);
        assert!(ci.hi <= 1.0);
        assert!(ci.lo > 0.9);
        assert!(ci.contains(0.99));
    }

    #[test]
    fn wilson_no_successes() {
        let ci = wilson_ci(0, 100, 0.95);
        assert!(ci.lo.abs() < 1e-12, "lo {}", ci.lo);
        assert!(ci.hi < 0.06, "hi {}", ci.hi);
    }

    #[test]
    fn wilson_half() {
        let ci = wilson_ci(50, 100, 0.95);
        assert!(ci.contains(0.5));
        assert!((ci.center() - 0.5).abs() < 0.01);
    }

    #[test]
    fn higher_level_is_wider() {
        let ci90 = wilson_ci(30, 100, 0.90);
        let ci99 = wilson_ci(30, 100, 0.99);
        assert!(ci99.width() > ci90.width());
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn wilson_rejects_zero_trials() {
        wilson_ci(0, 0, 0.95);
    }

    #[test]
    #[should_panic(expected = "confidence level must be in (0, 1), got 1")]
    fn wilson_rejects_level_one() {
        wilson_ci(3, 10, 1.0);
    }

    #[test]
    #[should_panic(expected = "confidence level must be in (0, 1), got 0")]
    fn wilson_rejects_level_zero() {
        wilson_ci(3, 10, 0.0);
    }

    #[test]
    #[should_panic(expected = "confidence level must be in (0, 1)")]
    fn mean_ci_rejects_level_above_one() {
        mean_ci(&Summary::from_slice(&[1.0, 2.0]), 1.5);
    }

    #[test]
    fn wilson_one_failure_in_a_trillion_trials() {
        // p̂ = 1 − 1e-12. The naive `1.0 - p` complement inherits the
        // rounding of p (relative error up to ~1e-4 in the complement),
        // while the integer-derived q = 1/n is correct to one ulp. The
        // interval must stay strictly below 1 at the low end and keep a
        // width on the order of z·sqrt(q/n) ≈ 4e-12.
        let trials: u64 = 1_000_000_000_000;
        let ci = wilson_ci(trials - 1, trials, 0.95);
        assert!(ci.hi <= 1.0);
        assert!(ci.lo < 1.0 - 1e-13, "lo {} not separated from 1", ci.lo);
        assert!(ci.lo > 1.0 - 1e-10, "lo {} too far from 1", ci.lo);
        assert!(ci.width() > 0.0 && ci.width() < 1e-10);
    }

    #[test]
    fn wilson_one_success_in_a_trillion_trials() {
        // Mirror case: the variance term is dominated by p itself, which
        // is already exact; this pins the symmetric behaviour.
        let trials: u64 = 1_000_000_000_000;
        let ci = wilson_ci(1, trials, 0.95);
        assert!(ci.lo >= 0.0);
        assert!(ci.hi > 1e-13 && ci.hi < 1e-10, "hi {}", ci.hi);
    }

    #[test]
    fn probit_upper_tail_mirrors_lower_tail_exactly() {
        // The upper branch evaluates -probit(1 - p); for p ≥ 0.5 the
        // complement is exact (Sterbenz), so whenever `1 - tail` is itself
        // representable the mirror is bitwise. Power-of-two tails make the
        // outer subtraction exact too, so equality must be strict.
        for tail in [2f64.powi(-40), 2f64.powi(-20), 2f64.powi(-6)] {
            assert_eq!(probit(1.0 - tail), -probit(tail));
        }
        let far = probit(1.0 - 2f64.powi(-40));
        assert!(far > 7.0 && far < 7.1, "far-tail probit {far}");
    }

    #[test]
    fn extreme_but_valid_levels_work() {
        // Just inside the domain on both sides: finite intervals, no panic.
        for level in [1e-6, 0.5, 0.999_999] {
            let ci = wilson_ci(5, 10, level);
            assert!(ci.lo.is_finite() && ci.hi.is_finite());
            let m = mean_ci(&Summary::from_slice(&[1.0, 2.0, 3.0]), level);
            assert!(m.width().is_finite());
        }
    }
}
