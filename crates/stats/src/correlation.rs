//! Covariance, correlation and lag autocorrelation for time series.
//!
//! Used by experiment E22 to measure the sign and magnitude of the
//! round-to-round correlation of arrival counts at a fixed bin — the
//! phenomenon Appendix B proves is *positive* (not negatively associated),
//! which is exactly what blocks standard concentration arguments.

/// Sample covariance of two equal-length series (unbiased, `n−1`).
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    xs.iter()
        .zip(ys)
        .map(|(&x, &y)| (x - mx) * (y - my))
        .sum::<f64>()
        / (n - 1.0)
}

/// Pearson correlation coefficient. Returns 0 when either series is
/// constant (no linear association measurable).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let cov = covariance(xs, ys);
    let sx = covariance(xs, xs).sqrt();
    let sy = covariance(ys, ys).sqrt();
    if sx == 0.0 || sy == 0.0 {
        return 0.0;
    }
    cov / (sx * sy)
}

/// Lag-`k` sample autocorrelation of a series (biased normalization by the
/// lag-0 variance, the standard ACF convention).
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    assert!(xs.len() >= 2, "need at least two points");
    assert!(
        lag < xs.len(),
        "lag {} out of range for length {}",
        lag,
        xs.len()
    );
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let denom: f64 = xs.iter().map(|&x| (x - mean).powi(2)).sum();
    if denom == 0.0 {
        return if lag == 0 { 1.0 } else { 0.0 };
    }
    let num: f64 = xs
        .windows(lag + 1)
        .map(|w| (w[0] - mean) * (w[lag] - mean))
        .sum();
    num / denom
}

/// The full ACF up to `max_lag` (inclusive), `acf[0] = 1`.
pub fn acf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    (0..=max_lag).map(|k| autocorrelation(xs, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covariance_of_identical_series_is_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let v = covariance(&xs, &xs);
        // Sample variance of 1..4 is 5/3.
        assert!((v - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_sign() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!(covariance(&xs, &ys) > 0.0);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!(covariance(&xs, &zs) < 0.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [10.0, 20.0, 30.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [30.0, 20.0, 10.0];
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn acf_lag_zero_is_one() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let a = acf(&xs, 3);
        assert!((a[0] - 1.0).abs() < 1e-12);
        assert_eq!(a.len(), 4);
        for &v in &a {
            assert!((-1.0..=1.0).contains(&v), "acf out of range: {v}");
        }
    }

    #[test]
    fn acf_of_alternating_series_is_negative_at_lag_one() {
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&xs, 1) < -0.9);
    }

    #[test]
    fn acf_of_constant_series() {
        let xs = [2.0; 10];
        assert_eq!(autocorrelation(&xs, 0), 1.0);
        assert_eq!(autocorrelation(&xs, 3), 0.0);
    }

    #[test]
    fn acf_of_persistent_series_positive() {
        // A slowly varying series has positive lag-1 autocorrelation.
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 / 20.0).sin()).collect();
        assert!(autocorrelation(&xs, 1) > 0.9);
    }

    #[test]
    #[should_panic(expected = "lag")]
    fn lag_out_of_range_panics() {
        autocorrelation(&[1.0, 2.0], 2);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn covariance_length_mismatch() {
        covariance(&[1.0], &[1.0, 2.0]);
    }
}
