//! Exact quantiles and empirical distribution helpers.

/// Exact sample quantile with linear interpolation (type-7, the R default).
///
/// `q ∈ [0, 1]`. The input need not be sorted; a sorted copy is made.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
    assert!(xs.iter().all(|x| !x.is_nan()), "NaN in sample");
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(f64::total_cmp);
    quantile_sorted(&v, q)
}

/// Exact quantile of an already sorted sample (type-7 interpolation).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Empirical CDF at `x`: fraction of samples ≤ `x`.
pub fn ecdf(xs: &[f64], x: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&v| v <= x).count() as f64 / xs.len() as f64
}

/// Empirical survival function at `x`: fraction of samples > `x`.
pub fn survival(xs: &[f64], x: f64) -> f64 {
    1.0 - ecdf(xs, x)
}

/// Several standard quantiles at once: (min, p25, median, p75, p95, max).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNum {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
    /// 95th percentile.
    pub q95: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes [`FiveNum`] for a sample.
pub fn five_num(xs: &[f64]) -> FiveNum {
    assert!(xs.iter().all(|x| !x.is_nan()), "NaN in sample");
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(f64::total_cmp);
    FiveNum {
        min: v[0],
        q25: quantile_sorted(&v, 0.25),
        median: quantile_sorted(&v, 0.5),
        q75: quantile_sorted(&v, 0.75),
        q95: quantile_sorted(&v, 0.95),
        max: v[v.len() - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn extreme_quantiles_are_min_max() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
    }

    #[test]
    fn interpolation_type7() {
        // R: quantile(c(1,2,3,4), 0.4, type=7) = 2.2
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.4) - 2.2).abs() < 1e-12);
    }

    #[test]
    fn singleton_sample() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn ecdf_and_survival() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ecdf(&xs, 2.0), 0.5);
        assert_eq!(ecdf(&xs, 0.0), 0.0);
        assert_eq!(ecdf(&xs, 5.0), 1.0);
        assert!((survival(&xs, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(ecdf(&[], 1.0), 0.0);
    }

    #[test]
    fn five_num_is_ordered() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let f = five_num(&xs);
        assert_eq!(f.min, 0.0);
        assert_eq!(f.median, 50.0);
        assert_eq!(f.max, 100.0);
        assert!(f.min <= f.q25 && f.q25 <= f.median);
        assert!(f.median <= f.q75 && f.q75 <= f.q95 && f.q95 <= f.max);
        assert!((f.q95 - 95.0).abs() < 1e-9);
    }
}
