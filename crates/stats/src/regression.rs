//! Least-squares fits for scaling laws.
//!
//! The experiment suite fits three families:
//!
//! * linear `y = a + b·x` — e.g. convergence time vs `n` (Theorem 1(b):
//!   expect slope ≈ 1 with `x = n`);
//! * log-regressor `y = a + b·ln(x)` — e.g. window max load vs `n`
//!   (Theorem 1(a): expect the `b` coefficient to be a positive constant);
//! * power law `y = c·x^e` via log-log linear fit — e.g. cover time vs `n`
//!   (Corollary 1: exponent ≈ 1 with a polylog correction).

/// An ordinary-least-squares line fit `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y = a + b·x` by OLS. Panics on fewer than 2 points or zero
/// x-variance.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    assert!(sxx > 0.0, "x values are constant");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinearFit {
        intercept,
        slope,
        r_squared,
    }
}

/// Fits `y = a + b·ln(x)`.
pub fn log_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    let lx: Vec<f64> = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "log_fit needs positive x");
            x.ln()
        })
        .collect();
    linear_fit(&lx, ys)
}

/// A power-law fit `y = coeff · x^exponent` (via log-log OLS).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerFit {
    /// Coefficient `c`.
    pub coeff: f64,
    /// Exponent `e`.
    pub exponent: f64,
    /// R² of the underlying log-log linear fit.
    pub r_squared: f64,
}

impl PowerFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.coeff * x.powf(self.exponent)
    }
}

/// Fits `y = c·x^e` by OLS in log-log space. Requires positive data.
pub fn power_fit(xs: &[f64], ys: &[f64]) -> PowerFit {
    let lx: Vec<f64> = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "power_fit needs positive x");
            x.ln()
        })
        .collect();
    let ly: Vec<f64> = ys
        .iter()
        .map(|&y| {
            assert!(y > 0.0, "power_fit needs positive y");
            y.ln()
        })
        .collect();
    let f = linear_fit(&lx, &ly);
    PowerFit {
        coeff: f.intercept.exp(),
        exponent: f.slope,
        r_squared: f.r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x).collect();
        let f = linear_fit(&xs, &ys);
        assert!((f.intercept - 2.0).abs() < 1e-12);
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.9, 5.2, 6.8, 9.1, 11.0];
        let f = linear_fit(&xs, &ys);
        assert!((f.slope - 2.0).abs() < 0.1);
        assert!(f.r_squared > 0.99 && f.r_squared <= 1.0);
    }

    #[test]
    fn constant_y_has_r2_one_slope_zero() {
        let f = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn constant_x_rejected() {
        linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
    }

    #[test]
    fn log_fit_recovers_log_law() {
        // y = 1 + 4 ln x, the Theorem-1 shape.
        let xs: Vec<f64> = (4..12).map(|k| (1usize << k) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 + 4.0 * x.ln()).collect();
        let f = log_fit(&xs, &ys);
        assert!((f.slope - 4.0).abs() < 1e-9);
        assert!((f.intercept - 1.0).abs() < 1e-9);
    }

    #[test]
    fn power_fit_recovers_power_law() {
        // y = 2.5 x^1.5
        let xs = [1.0f64, 2.0, 4.0, 8.0, 16.0];
        let ys: Vec<f64> = xs.iter().map(|&x| 2.5 * x.powf(1.5)).collect();
        let f = power_fit(&xs, &ys);
        assert!((f.exponent - 1.5).abs() < 1e-9);
        assert!((f.coeff - 2.5).abs() < 1e-9);
        assert!((f.predict(32.0) - 2.5 * 32.0f64.powf(1.5)).abs() < 1e-6);
    }

    #[test]
    fn power_fit_on_nlog2n_data_gives_exponent_slightly_above_one() {
        // Cover-time-shaped data: y = n ln²n has local log-log slope
        // 1 + 2/ln n, which for n in [256, 16384] is ≈ 1.2–1.36.
        let xs: Vec<f64> = (8..15).map(|k| (1usize << k) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| x * x.ln() * x.ln()).collect();
        let f = power_fit(&xs, &ys);
        assert!(f.exponent > 1.1 && f.exponent < 1.4, "exp {}", f.exponent);
        assert!(f.r_squared > 0.999);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn power_fit_rejects_nonpositive() {
        power_fit(&[1.0, 2.0], &[0.0, 1.0]);
    }
}
