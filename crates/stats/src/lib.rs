//! # rbb-stats — statistics substrate for the reproduction
//!
//! Everything the experiment suite needs to turn raw trial outputs into the
//! quantities the paper states: streaming moments, exact quantiles and
//! integer histograms, mergeable ensemble accumulators ([`accumulator`]),
//! normal/Wilson confidence intervals, scaling-law fits (linear /
//! `a + b·ln x` / power law), goodness-of-fit statistics against exact laws
//! ([`conformance`]), and evaluators for the paper's own Chernoff bounds
//! (Appendix A) with their explicit constants.
//!
//! No simulation code lives here; the crate is dependency-light and fully
//! deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulator;
pub mod chernoff;
pub mod ci;
pub mod conformance;
pub mod correlation;
pub mod distance;
pub mod histogram;
pub mod quantile;
pub mod regression;
pub mod summary;

pub use accumulator::{ExceedanceCounter, MetricAccumulator};
pub use chernoff::{
    chernoff_lower, chernoff_upper, coupon_collector, harmonic, lemma1_alpha, lemma4_alpha,
    oneshot_max_load_estimate,
};
pub use ci::{mean_ci, probit, wilson_ci, ConfidenceInterval};
pub use conformance::{chi_square_stat, pool_cells};
pub use correlation::{acf, autocorrelation, covariance, pearson};
pub use distance::{kl_divergence, normalize, tv_distance};
pub use histogram::IntHistogram;
pub use quantile::{ecdf, five_num, median, quantile, quantile_sorted, survival, FiveNum};
pub use regression::{linear_fit, log_fit, power_fit, LinearFit, PowerFit};
pub use summary::Summary;
