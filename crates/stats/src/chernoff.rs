//! The paper's Appendix-A Chernoff bounds and related analytic quantities.
//!
//! Lemma 7 of the paper (standard multiplicative Chernoff):
//!
//! * lower tail (6): `P(X ≤ (1−δ)μ_L) ≤ exp(−δ²μ_L/2)`
//! * upper tail (7): `P(X ≥ (1+δ)μ_H) ≤ exp(−δ²μ_H/3)`
//!
//! These evaluators let experiments print the analytic bound next to every
//! empirical tail (e.g. E06 compares the measured absorption tail of the
//! Lemma-5 chain against `e^{−t/144}`, which is (7) with `δ = 1/6`).

/// Chernoff lower-tail bound (paper inequality (6)).
pub fn chernoff_lower(mu_l: f64, delta: f64) -> f64 {
    assert!((0.0..1.0).contains(&delta), "δ must be in (0,1)");
    assert!(mu_l >= 0.0);
    (-delta * delta * mu_l / 2.0).exp()
}

/// Chernoff upper-tail bound (paper inequality (7)).
pub fn chernoff_upper(mu_h: f64, delta: f64) -> f64 {
    assert!((0.0..1.0).contains(&delta), "δ must be in (0,1)");
    assert!(mu_h >= 0.0);
    (-delta * delta * mu_h / 3.0).exp()
}

/// The Lemma-1 bound: `P(fewer than n/4 empty bins next round) ≤ e^{−αn}`.
/// Returns the paper's bound with its explicit constant
/// `α = ε²/(4(1+ε))` evaluated at the worst case over `b` (the number of
/// singleton bins); the paper shows `ε > 0` exists for large `n`. We compute
/// the exact worst-case `ε(n) = min_b (n+b)/2 · e^{−(n+b)/(2(n−1))} / (n/4) − 1`.
pub fn lemma1_alpha(n: usize) -> f64 {
    assert!(n >= 2);
    let nf = n as f64;
    let mut min_ratio = f64::INFINITY;
    // The expression is monotone enough to scan coarse b values; the minimum
    // over b ∈ [0, n] of (n+b)/2 · exp(−(n+b)/(2(n−1))) happens at an
    // endpoint because the map x ↦ x·e^{−x/(n−1)}/2 is unimodal in x = n+b.
    for b in [0usize, n] {
        let x = nf + b as f64;
        let expected_lb = 0.5 * x * (-x / (2.0 * (nf - 1.0))).exp();
        min_ratio = min_ratio.min(expected_lb / (nf / 4.0));
    }
    let eps = min_ratio - 1.0;
    if eps <= 0.0 {
        return 0.0; // bound vacuous at this n (only tiny n)
    }
    eps * eps / (4.0 * (1.0 + eps))
}

/// The Lemma-4 constant: `P(Y₁+⋯+Y_{5n} ≥ 4n) ≤ e^{−αn}` with `α = 1/180`.
pub fn lemma4_alpha() -> f64 {
    1.0 / 180.0
}

/// `n`-th harmonic number `H_n = Σ_{k=1}^n 1/k`.
pub fn harmonic(n: usize) -> f64 {
    (1..=n).map(|k| 1.0 / k as f64).sum()
}

/// Expected cover time of a single random walk on the complete graph with
/// self-loops permitted at re-assignment: the coupon-collector bound
/// `n·H_n ≈ n ln n` (see Section 4: "the cover time of the single
/// random-walk process is w.h.p. O(n log n)").
pub fn coupon_collector(n: usize) -> f64 {
    n as f64 * harmonic(n)
}

/// The classical one-shot balls-into-bins expected maximum load
/// `≈ ln n / ln ln n` (leading term; `n` balls into `n` bins).
pub fn oneshot_max_load_estimate(n: usize) -> f64 {
    assert!(n >= 3);
    let ln_n = (n as f64).ln();
    ln_n / ln_n.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chernoff_bounds_decrease_in_mu() {
        assert!(chernoff_lower(100.0, 0.5) < chernoff_lower(10.0, 0.5));
        assert!(chernoff_upper(100.0, 0.5) < chernoff_upper(10.0, 0.5));
    }

    #[test]
    fn chernoff_bounds_decrease_in_delta() {
        assert!(chernoff_upper(50.0, 0.9) < chernoff_upper(50.0, 0.1));
    }

    #[test]
    fn chernoff_values_match_formulas() {
        // (7) with δ = 1/6, μ = (3/4)t: exp(−t/144).
        let t = 288.0;
        let got = chernoff_upper(0.75 * t, 1.0 / 6.0);
        assert!((got - (-t / 144.0).exp()).abs() < 1e-15);
        // Lemma 4: δ = 1/15, μ = 15n/4: exp(−n/180)... (1/15)²·(15n/4)/3 = n/180.
        let n = 360.0;
        let got = chernoff_upper(15.0 * n / 4.0, 1.0 / 15.0);
        assert!((got - (-n / 180.0).exp()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "δ")]
    fn chernoff_rejects_bad_delta() {
        chernoff_upper(10.0, 1.5);
    }

    #[test]
    fn lemma1_alpha_positive_for_large_n() {
        assert!(lemma1_alpha(1000) > 0.0);
        assert!(lemma1_alpha(100) > 0.0);
    }

    #[test]
    fn lemma1_bound_is_tiny_for_moderate_n() {
        let bound_256 = (-lemma1_alpha(256) * 256.0).exp();
        assert!(bound_256 < 0.1, "bound {bound_256}");
        let bound_4096 = (-lemma1_alpha(4096) * 4096.0).exp();
        assert!(bound_4096 < 1e-10, "bound {bound_4096}");
    }

    #[test]
    fn harmonic_known_values() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        // H_n ≈ ln n + γ
        let h = harmonic(100_000);
        assert!((h - (100_000f64.ln() + 0.5772156649)).abs() < 1e-4);
    }

    #[test]
    fn coupon_collector_scale() {
        let cc = coupon_collector(1000);
        assert!(cc > 1000.0 * 6.9 && cc < 1000.0 * 7.6, "cc {cc}");
    }

    #[test]
    fn oneshot_estimate_grows_slowly() {
        let a = oneshot_max_load_estimate(1_000);
        let b = oneshot_max_load_estimate(1_000_000);
        assert!(b > a);
        assert!(b < 2.5 * a, "should grow sub-logarithmically");
    }
}
