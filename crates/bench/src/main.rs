//! `rbb-bench` — the repo's machine-readable perf gate.
//!
//! Runs warmup + repetition + median-throughput measurements of every hot
//! path (load/ball engines scalar vs batched, Tetris, traversal, graph
//! walks, the work-stealing trial scheduler) and emits `BENCH.json` (see
//! [`rbb_bench::BenchReport`] for the schema). `ci.sh` runs it with
//! `--quick --json target/BENCH.json --min-engine-speedup 1.5` as a smoke
//! gate; the committed `BENCH.json` snapshot is refreshed deliberately with
//! a full-profile run.
//!
//! Usage:
//! ```text
//! rbb-bench [--quick] [--json <path>] [--only <substring>]
//!           [--reps <k>] [--seed <u64>] [--min-engine-speedup <x>]
//!           [--min-sparse-speedup <x>] [--min-sharded-speedup <x>]
//!           [--min-weighted-unit-ratio <x>] [--list]
//! ```

use rbb_bench::{measure, measure_paired, BenchReport, BenchResult, Derived, Spec, SCHEMA_VERSION};
use rbb_core::ball_process::BallProcess;
use rbb_core::config::Config;
use rbb_core::engine::Engine;
use rbb_core::metrics::NullObserver;
use rbb_core::process::LoadProcess;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::strategy::QueueStrategy;
use rbb_core::tetris::Tetris;
use rbb_core::weights::{Capacities, Weights};
use rbb_graphs::{complete, ring, RandomWalk};
use rbb_serve::{MockClock, Session};
use rbb_sim::{
    sweep_par_seeded, EngineSpec, EnsembleSpec, MetricKind, MetricSpec, ScenarioSpec, SeedTree,
    StartSpec,
};
use rbb_traversal::Traversal;

/// Sizes and iteration counts for one run profile.
struct Profile {
    /// Bins for the load-engine pair (the perf-gate headline).
    engine_n: usize,
    /// Rounds per timed iteration for the engines and Tetris.
    engine_rounds: u64,
    /// Bins for the ball-identity engine pair.
    ball_n: usize,
    ball_rounds: u64,
    /// Nodes (= tokens) for the traversal engine.
    traversal_n: usize,
    traversal_rounds: u64,
    /// Vertices for the single-walk benchmarks.
    walk_n: usize,
    walk_steps: u64,
    /// Scheduler grid: `params × trials` trials of `sched_rounds` rounds.
    sched_params: usize,
    sched_trials: usize,
    sched_n: usize,
    sched_rounds: u64,
    /// Sparse-regime pair: `sparse_m` balls over `sparse_n` bins
    /// (`m/n ≤ 1/64`), run for `sparse_rounds` rounds by the sparse engine
    /// and the dense baseline.
    sparse_n: usize,
    sparse_m: u64,
    sparse_rounds: u64,
    /// Sharded pair: the dense `m = n` regime at `sharded_n` bins, run for
    /// `sharded_rounds` rounds by the sharded engine (`sharded_shards`
    /// shards) and the dense baseline. Kept at the gate's contractual
    /// n = 10^7 even in `--quick` — the gate is about large-n scaling, and
    /// a small-n "quick" number would measure nothing relevant.
    sharded_n: usize,
    sharded_shards: usize,
    sharded_rounds: u64,
    /// Ensemble target: `ens_reps` seeds of `ens_rounds` rounds at `ens_n`.
    ens_n: usize,
    ens_reps: usize,
    ens_rounds: u64,
    /// Serve target: `serve_places` hot-path placements per timed iteration
    /// through a daemon session at `serve_n` bins.
    serve_n: usize,
    serve_places: u64,
    warmup: usize,
    reps: usize,
}

const FULL: Profile = Profile {
    engine_n: 4096,
    engine_rounds: 400,
    ball_n: 2048,
    ball_rounds: 200,
    traversal_n: 512,
    traversal_rounds: 200,
    walk_n: 1024,
    walk_steps: 200_000,
    sched_params: 4,
    sched_trials: 8,
    sched_n: 256,
    sched_rounds: 400,
    sparse_n: 1 << 22,
    sparse_m: 4096, // density 1/1024 — well inside the ≤ 1/64 gate regime
    sparse_rounds: 40,
    sharded_n: 10_000_000,
    sharded_shards: 4,
    sharded_rounds: 5,
    ens_n: 512,
    ens_reps: 32,
    ens_rounds: 500,
    serve_n: 4096,
    serve_places: 200_000,
    warmup: 3,
    reps: 15,
};

const QUICK: Profile = Profile {
    engine_n: 1024,
    engine_rounds: 100,
    ball_n: 512,
    ball_rounds: 50,
    traversal_n: 128,
    traversal_rounds: 50,
    walk_n: 256,
    walk_steps: 20_000,
    sched_params: 2,
    sched_trials: 4,
    sched_n: 128,
    sched_rounds: 100,
    sparse_n: 1 << 20,
    sparse_m: 1024,
    sparse_rounds: 20,
    sharded_n: 10_000_000,
    sharded_shards: 4,
    sharded_rounds: 3,
    ens_n: 128,
    ens_reps: 8,
    ens_rounds: 100,
    serve_n: 1024,
    serve_places: 50_000,
    warmup: 1,
    reps: 5,
};

fn usage() -> ! {
    eprintln!(
        "usage: rbb-bench [--quick] [--json <path>] [--only <substring>]\n\
         \u{20}                [--reps <k>] [--seed <u64>] [--min-engine-speedup <x>]\n\
         \u{20}                [--min-sparse-speedup <x>] [--min-sharded-speedup <x>]\n\
         \u{20}                [--min-weighted-unit-ratio <x>] [--list]"
    );
    std::process::exit(2);
}

/// A registered benchmark: its identity plus a deferred fixture builder.
/// Fixtures (processes, graphs) are only constructed once a benchmark
/// survives the `--only` filter; `--list` never constructs any.
struct Bench {
    spec: Spec,
    kind: Kind,
}

/// How a registered benchmark is measured.
enum Kind {
    /// One routine, timed on its own ([`measure`]).
    Single(Box<dyn FnOnce() -> Box<dyn FnMut()>>),
    /// Two routines timed interleaved ([`measure_paired`]) so their ratio
    /// survives timing drift; `baseline` names the second side's entry.
    Paired {
        baseline: Spec,
        #[allow(clippy::type_complexity)]
        build: Box<dyn FnOnce() -> (Box<dyn FnMut()>, Box<dyn FnMut()>)>,
    },
}

/// The benchmark registry — the single source of truth for names, sizes,
/// and routines (`--list`, `--only`, and the measurements all read it).
fn registry(p: &Profile, seed: u64) -> Vec<Bench> {
    let mk = |spec: Spec, build: Box<dyn FnOnce() -> Box<dyn FnMut()>>| Bench {
        spec,
        kind: Kind::Single(build),
    };
    let (engine_n, engine_rounds) = (p.engine_n, p.engine_rounds);
    let (ball_n, ball_rounds) = (p.ball_n, p.ball_rounds);
    let (trav_n, trav_rounds) = (p.traversal_n, p.traversal_rounds);
    let (walk_n, walk_steps) = (p.walk_n, p.walk_steps);
    let (sched_params, sched_trials, sched_n, sched_rounds) =
        (p.sched_params, p.sched_trials, p.sched_n, p.sched_rounds);
    let (sparse_n, sparse_m, sparse_rounds) = (p.sparse_n, p.sparse_m, p.sparse_rounds);
    let (sharded_n, sharded_shards, sharded_rounds) =
        (p.sharded_n, p.sharded_shards, p.sharded_rounds);
    let (ens_n, ens_reps, ens_rounds) = (p.ens_n, p.ens_reps, p.ens_rounds);
    let (serve_n, serve_places) = (p.serve_n, p.serve_places);

    let ball_fixture = move |seed: u64| {
        BallProcess::new(
            Config::one_per_bin(ball_n),
            QueueStrategy::Fifo,
            Xoshiro256pp::seed_from(seed),
        )
    };

    vec![
        mk(
            Spec::new(
                "engine/scalar",
                "engine",
                engine_n as u64,
                engine_rounds,
                "rounds",
            ),
            Box::new(move || {
                // Explicit scalar stepping: `Engine::run_silent` drives the
                // batched kernel, and the gate needs the scalar baseline.
                let mut proc = LoadProcess::legitimate_start(engine_n, seed);
                Box::new(move || {
                    for _ in 0..engine_rounds {
                        proc.step();
                    }
                })
            }),
        ),
        mk(
            Spec::new(
                "engine/batched",
                "engine",
                engine_n as u64,
                engine_rounds,
                "rounds",
            ),
            Box::new(move || {
                let mut proc = LoadProcess::legitimate_start(engine_n, seed);
                Box::new(move || proc.run_silent(engine_rounds))
            }),
        ),
        mk(
            // The spec-driven factory path: the same batched engine behind
            // `Box<dyn Engine>`, built from a declarative ScenarioSpec.
            // Tracks engine/batched to keep the factory overhead-free.
            Spec::new(
                "engine/spec",
                "engine",
                engine_n as u64,
                engine_rounds,
                "rounds",
            ),
            Box::new(move || {
                let spec = ScenarioSpec::builder(engine_n).seed(seed).build();
                let mut engine = rbb_sim::build_engine(&spec).expect("valid spec");
                Box::new(move || {
                    for _ in 0..engine_rounds {
                        engine.step_batched();
                    }
                })
            }),
        ),
        Bench {
            // The identical workload as engine/batched, but built through
            // the weighted constructor with all-ones weights and unbounded
            // capacities: the overlay normalizes away, so any measured gap
            // against the plain batched engine is overhead the weighted
            // layer leaked into the unit fast path (gated < 5% by ci.sh).
            // The two sides are timed interleaved — a 5% budget is far
            // below the drift between two independently measured medians.
            spec: Spec::new(
                "engine/weighted-unit",
                "engine",
                engine_n as u64,
                engine_rounds,
                "rounds",
            ),
            kind: Kind::Paired {
                baseline: Spec::new(
                    "engine/weighted-unit-baseline",
                    "engine",
                    engine_n as u64,
                    engine_rounds,
                    "rounds",
                ),
                build: Box::new(move || {
                    let mut weighted = LoadProcess::with_weights(
                        Config::one_per_bin(engine_n),
                        Xoshiro256pp::seed_from(seed),
                        Weights::Explicit(vec![1; engine_n]),
                        Capacities::Unbounded,
                    );
                    let mut plain = LoadProcess::legitimate_start(engine_n, seed);
                    (
                        Box::new(move || weighted.run_silent(engine_rounds)),
                        Box::new(move || plain.run_silent(engine_rounds)),
                    )
                }),
            },
        },
        mk(
            Spec::new(
                "ball_engine/scalar",
                "ball_engine",
                ball_n as u64,
                ball_rounds,
                "rounds",
            ),
            Box::new(move || {
                let mut proc = ball_fixture(seed);
                Box::new(move || {
                    for _ in 0..ball_rounds {
                        proc.step();
                    }
                })
            }),
        ),
        mk(
            Spec::new(
                "ball_engine/batched",
                "ball_engine",
                ball_n as u64,
                ball_rounds,
                "rounds",
            ),
            Box::new(move || {
                let mut proc = ball_fixture(seed);
                Box::new(move || {
                    for _ in 0..ball_rounds {
                        proc.step_batched();
                    }
                })
            }),
        ),
        mk(
            // The sparse occupancy engine in its home regime (m/n ≤ 1/64):
            // rounds cost O(#occupied), so throughput is independent of n.
            Spec::new(
                "engine/sparse",
                "engine",
                sparse_n as u64,
                sparse_rounds,
                "rounds",
            ),
            Box::new(move || {
                let spec = ScenarioSpec::builder(sparse_n)
                    .balls(sparse_m)
                    .start(StartSpec::RandomMultinomial { salt: 0x5AA5E })
                    .engine(EngineSpec::Sparse)
                    .seed(seed)
                    .build();
                let mut engine = rbb_sim::build_engine(&spec).expect("valid sparse spec");
                Box::new(move || {
                    for _ in 0..sparse_rounds {
                        engine.step_batched();
                    }
                })
            }),
        ),
        mk(
            // The dense engine on the identical workload — the baseline the
            // --min-sparse-speedup gate compares against. Same start
            // configuration and RNG stream, so both sides do identical
            // "work" in the process sense; only the storage differs.
            Spec::new(
                "engine/sparse-baseline",
                "engine",
                sparse_n as u64,
                sparse_rounds,
                "rounds",
            ),
            Box::new(move || {
                let spec = ScenarioSpec::builder(sparse_n)
                    .balls(sparse_m)
                    .start(StartSpec::RandomMultinomial { salt: 0x5AA5E })
                    .engine(EngineSpec::Dense)
                    .seed(seed)
                    .build();
                let mut engine = rbb_sim::build_engine(&spec).expect("valid dense spec");
                Box::new(move || {
                    for _ in 0..sparse_rounds {
                        engine.step_batched();
                    }
                })
            }),
        ),
        mk(
            // The sharded engine in its home regime (large dense m = n):
            // per-shard columns, per-shard streams, thread-pool round body.
            Spec::new(
                "engine/sharded",
                "engine",
                sharded_n as u64,
                sharded_rounds,
                "rounds",
            ),
            Box::new(move || {
                let spec = ScenarioSpec::builder(sharded_n)
                    .engine(EngineSpec::Sharded)
                    .shards(sharded_shards)
                    .seed(seed)
                    .build();
                let mut engine = rbb_sim::build_engine(&spec).expect("valid sharded spec");
                Box::new(move || {
                    for _ in 0..sharded_rounds {
                        engine.step_batched();
                    }
                })
            }),
        ),
        mk(
            // The dense engine on the identical workload — the baseline the
            // --min-sharded-speedup gate compares against. Same start
            // configuration; the sharded side draws from per-shard streams
            // (law-equal work, different storage and scheduling).
            Spec::new(
                "engine/sharded-baseline",
                "engine",
                sharded_n as u64,
                sharded_rounds,
                "rounds",
            ),
            Box::new(move || {
                let spec = ScenarioSpec::builder(sharded_n)
                    .engine(EngineSpec::Dense)
                    .seed(seed)
                    .build();
                let mut engine = rbb_sim::build_engine(&spec).expect("valid dense spec");
                Box::new(move || {
                    for _ in 0..sharded_rounds {
                        engine.step_batched();
                    }
                })
            }),
        ),
        mk(
            Spec::new(
                "tetris/step",
                "tetris",
                engine_n as u64,
                engine_rounds,
                "rounds",
            ),
            Box::new(move || {
                let mut proc =
                    Tetris::new(Config::one_per_bin(engine_n), Xoshiro256pp::seed_from(seed));
                Box::new(move || proc.run(engine_rounds, NullObserver))
            }),
        ),
        mk(
            Spec::new(
                "traversal/step",
                "traversal",
                trav_n as u64,
                trav_rounds,
                "rounds",
            ),
            Box::new(move || {
                let mut trav = Traversal::new(trav_n, QueueStrategy::Fifo, seed);
                Box::new(move || {
                    for _ in 0..trav_rounds {
                        trav.step();
                    }
                })
            }),
        ),
        mk(
            Spec::new("walk/complete", "walk", walk_n as u64, walk_steps, "steps"),
            Box::new(move || {
                let clique = complete(walk_n);
                let mut rng = Xoshiro256pp::seed_from(seed);
                let mut walk_pos = 0usize;
                Box::new(move || {
                    let mut walk = RandomWalk::new(&clique, walk_pos);
                    for _ in 0..walk_steps {
                        walk.step(&mut rng);
                    }
                    walk_pos = walk.position();
                })
            }),
        ),
        mk(
            Spec::new("walk/ring", "walk", walk_n as u64, walk_steps, "steps"),
            Box::new(move || {
                let cycle = ring(walk_n);
                let mut rng = Xoshiro256pp::seed_from(seed ^ 1);
                let mut walk_pos = 0usize;
                Box::new(move || {
                    let mut walk = RandomWalk::new(&cycle, walk_pos);
                    for _ in 0..walk_steps {
                        walk.step(&mut rng);
                    }
                    walk_pos = walk.position();
                })
            }),
        ),
        mk(
            // The (param × trial) grid through the work-stealing scheduler:
            // measures fan-out overhead + parallel trial throughput.
            Spec::new(
                "scheduler/sweep_par",
                "scheduler",
                (sched_params * sched_trials) as u64,
                (sched_params * sched_trials) as u64,
                "trials",
            ),
            Box::new(move || {
                let grid: Vec<usize> = (0..sched_params).map(|i| sched_n + i).collect();
                let tree = SeedTree::new(seed);
                Box::new(move || {
                    let out = sweep_par_seeded(
                        tree,
                        &grid,
                        sched_trials,
                        |n| format!("bench-n{n}"),
                        |&n, _i, seed| {
                            let mut p = LoadProcess::legitimate_start(n, seed);
                            p.run_silent(sched_rounds);
                            p.config().max_load()
                        },
                    );
                    std::hint::black_box(out);
                })
            }),
        ),
        mk(
            // The full ensemble pipeline: parallel seed fan-out + streaming
            // accumulator fold + report construction. Measures trials/s of
            // the `rbb ensemble` hot path end to end.
            Spec::new(
                "ensemble/run",
                "ensemble",
                ens_n as u64,
                ens_reps as u64,
                "trials",
            ),
            Box::new(move || {
                let scenario = ScenarioSpec::builder(ens_n)
                    .name("bench-ensemble")
                    .horizon_rounds(ens_rounds)
                    .build();
                let bound = 4.0 * (ens_n as f64).ln();
                let spec = EnsembleSpec::new(scenario, seed, ens_reps).with_metrics(vec![
                    MetricSpec::with_thresholds(MetricKind::WindowMaxLoad, vec![bound]),
                    MetricSpec::plain(MetricKind::MeanRoundMax),
                ]);
                Box::new(move || {
                    let report = spec.run().expect("valid ensemble");
                    std::hint::black_box(report);
                })
            }),
        ),
        mk(
            // The rbb-serve hot path end to end: request parse (fast path)
            // → engine placement → response render, on one core with the
            // deterministic mock clock. The ISSUE gate wants ≥ 10^6
            // placements/s here.
            Spec::new(
                "serve/place",
                "serve",
                serve_n as u64,
                serve_places,
                "placements",
            ),
            Box::new(move || {
                let mut session = Session::new(
                    Box::new(LoadProcess::legitimate_start(serve_n, seed)),
                    Box::new(MockClock::new(25)),
                );
                Box::new(move || {
                    for _ in 0..serve_places {
                        let resp = session.handle_line("{\"op\":\"place\"}");
                        std::hint::black_box(&resp);
                    }
                })
            }),
        ),
    ]
}

/// Runs the (filtered) registry: warm-up also burns the engines in to their
/// stationary load profile, so the timed iterations measure equilibrium
/// throughput.
fn run_benchmarks(p: &Profile, seed: u64, only: Option<&str>, reps: usize) -> Vec<BenchResult> {
    let print_line = |r: &BenchResult| {
        println!(
            "{:<24} n={:<6} {:>14.1} ns/iter {:>16.0} {}/s",
            r.name, r.n, r.median_ns, r.throughput_per_sec, r.unit
        );
    };
    registry(p, seed)
        .into_iter()
        .filter(|b| only.is_none_or(|pat| b.spec.name.contains(pat)))
        .flat_map(|b| match b.kind {
            Kind::Single(build) => {
                let mut routine = build();
                let r = measure(b.spec, p.warmup, reps, &mut routine);
                print_line(&r);
                vec![r]
            }
            Kind::Paired { baseline, build } => {
                let (mut ra, mut rb) = build();
                let (a, base) = measure_paired(b.spec, baseline, p.warmup, reps, &mut ra, &mut rb);
                print_line(&a);
                print_line(&base);
                vec![a, base]
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut only: Option<String> = None;
    let mut reps_override: Option<usize> = None;
    let mut seed: u64 = 42;
    let mut min_speedup: Option<f64> = None;
    let mut min_sparse_speedup: Option<f64> = None;
    let mut min_sharded_speedup: Option<f64> = None;
    let mut min_weighted_unit_ratio: Option<f64> = None;
    let mut list = false;

    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--quick" => quick = true,
            "--list" => list = true,
            "--json" => json_path = Some(take(&mut i)),
            "--only" => only = Some(take(&mut i)),
            "--reps" => reps_override = Some(take(&mut i).parse().unwrap_or_else(|_| usage())),
            "--seed" => seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--min-engine-speedup" => {
                min_speedup = Some(take(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--min-sparse-speedup" => {
                min_sparse_speedup = Some(take(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--min-sharded-speedup" => {
                min_sharded_speedup = Some(take(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--min-weighted-unit-ratio" => {
                min_weighted_unit_ratio = Some(take(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            _ => usage(),
        }
        i += 1;
    }

    if list {
        // Unconsumed builders construct no fixtures, so listing is free.
        for bench in registry(&QUICK, seed) {
            println!("{}", bench.spec.name);
            if let Kind::Paired { baseline, .. } = &bench.kind {
                println!("{}", baseline.name);
            }
        }
        return;
    }

    let profile = if quick { &QUICK } else { &FULL };
    let reps = reps_override.unwrap_or(profile.reps);
    println!(
        "rbb-bench: {} profile, {} warmup + {} reps per benchmark, seed {seed}\n",
        if quick { "quick" } else { "full" },
        profile.warmup,
        reps
    );
    let results = run_benchmarks(profile, seed, only.as_deref(), reps);
    let derived = Derived::from_results(&results);

    if let Some(speedup) = derived.engine_speedup_batched_vs_scalar {
        println!("\nengine speedup (batched vs scalar): {speedup:.2}x");
    }
    if let Some(speedup) = derived.engine_speedup_sparse_vs_dense {
        println!("sparse-regime speedup (sparse vs dense engine): {speedup:.2}x");
    }
    if let Some(speedup) = derived.engine_speedup_sharded_vs_dense {
        println!(
            "sharded speedup (sharded vs dense engine, {} shards): {speedup:.2}x",
            profile.sharded_shards
        );
    }
    if let Some(ratio) = derived.engine_ratio_weighted_unit_vs_batched {
        println!("weighted-unit ratio (unit fast path vs batched): {ratio:.2}x");
    }

    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        // Sanctioned wall-clock read: report metadata at the output
        // boundary, never inside a result path (clippy.toml bans the rest).
        #[allow(clippy::disallowed_methods)]
        generated_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        quick,
        threads: rayon::current_num_threads(),
        warmup_iters: profile.warmup,
        reps,
        seed,
        derived,
        benchmarks: results,
    };

    if let Some(path) = &json_path {
        std::fs::write(path, report.to_json() + "\n")
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    if let Some(min) = min_speedup {
        match report.derived.engine_speedup_batched_vs_scalar {
            Some(speedup) if speedup >= min => {
                println!("perf gate OK: {speedup:.2}x >= {min:.2}x");
            }
            Some(speedup) => {
                eprintln!("perf gate FAILED: engine speedup {speedup:.2}x < required {min:.2}x");
                std::process::exit(1);
            }
            None => {
                eprintln!("perf gate FAILED: engine benchmarks were filtered out");
                std::process::exit(1);
            }
        }
    }
    if let Some(min) = min_sparse_speedup {
        match report.derived.engine_speedup_sparse_vs_dense {
            Some(speedup) if speedup >= min => {
                println!("sparse perf gate OK: {speedup:.2}x >= {min:.2}x");
            }
            Some(speedup) => {
                eprintln!(
                    "sparse perf gate FAILED: sparse-vs-dense speedup {speedup:.2}x < \
                     required {min:.2}x"
                );
                std::process::exit(1);
            }
            None => {
                eprintln!("sparse perf gate FAILED: sparse benchmarks were filtered out");
                std::process::exit(1);
            }
        }
    }
    if let Some(min) = min_sharded_speedup {
        // The sharded gate is a *parallel-scaling* assertion: with fewer
        // cores than shards the kernel cannot physically beat the dense
        // single-core scan (sharding only redistributes the same work plus
        // outbox traffic), so enforcing the threshold there would gate on
        // the CI machine's shape, not on a code regression. The ratio is
        // still measured, printed, and recorded in BENCH.json above; the
        // threshold is enforced exactly when the machine can express it.
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        let shards = profile.sharded_shards;
        match report.derived.engine_speedup_sharded_vs_dense {
            Some(speedup) if cores < shards => {
                println!(
                    "sharded perf gate SKIPPED: machine has {cores} core(s) < {shards} shards \
                     (measured {speedup:.2}x, required {min:.2}x on >= {shards} cores; \
                     ratio recorded in BENCH.json)"
                );
            }
            Some(speedup) if speedup >= min => {
                println!("sharded perf gate OK: {speedup:.2}x >= {min:.2}x");
            }
            Some(speedup) => {
                eprintln!(
                    "sharded perf gate FAILED: sharded-vs-dense speedup {speedup:.2}x < \
                     required {min:.2}x on {cores} cores"
                );
                std::process::exit(1);
            }
            None => {
                eprintln!("sharded perf gate FAILED: sharded benchmarks were filtered out");
                std::process::exit(1);
            }
        }
    }
    if let Some(min) = min_weighted_unit_ratio {
        match report.derived.engine_ratio_weighted_unit_vs_batched {
            Some(ratio) if ratio >= min => {
                println!("weighted-unit perf gate OK: {ratio:.2}x >= {min:.2}x");
            }
            Some(ratio) => {
                eprintln!(
                    "weighted-unit perf gate FAILED: unit fast path at {ratio:.2}x of \
                     engine/batched < required {min:.2}x (the weighted layer leaked \
                     overhead into the unit path)"
                );
                std::process::exit(1);
            }
            None => {
                eprintln!("weighted-unit perf gate FAILED: engine benchmarks were filtered out");
                std::process::exit(1);
            }
        }
    }
}
