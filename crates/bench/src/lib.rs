//! # rbb-bench — criterion benchmarks
//!
//! Bench targets (see `benches/`): `engine` (load vs identity engines),
//! `tetris`, `samplers` (+ PRNG ablation), `graphs`, `traversal` (+ bitset
//! ablation), `baselines`, `strategies` (FIFO/LIFO/random ablation).
//! Run with `cargo bench -p rbb-bench`.
