//! # rbb-bench — throughput measurement
//!
//! Two entry points:
//!
//! * **`rbb-bench` binary** (`src/main.rs`) — the repo's perf gate: warmup +
//!   repetition + median-throughput measurements of the hot paths (engines,
//!   Tetris, traversal, graph walks, trial scheduler), emitted as a
//!   machine-readable `BENCH.json` (see [`BenchReport`]) and consumed by
//!   `ci.sh` as a compile-and-smoke gate with a minimum engine-speedup
//!   threshold.
//! * **criterion bench targets** (`benches/`): `engine` (load vs identity
//!   engines, scalar vs batched), `tetris`, `samplers` (+ PRNG ablation),
//!   `graphs`, `traversal` (+ bitset ablation), `baselines`, `strategies`
//!   (FIFO/LIFO/random ablation). Run with `cargo bench -p rbb-bench`.
//!
//! This library holds the measurement harness and the `BENCH.json` schema so
//! both stay unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Version of the `BENCH.json` schema emitted by [`BenchReport::to_json`].
/// Bump on any breaking change to the report shape.
pub const SCHEMA_VERSION: u32 = 1;

/// One measured benchmark: `reps` timed iterations after `warmup` untimed
/// ones, summarized by min/median/mean nanoseconds per iteration and the
/// median-derived throughput.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BenchResult {
    /// Unique benchmark name, `group/variant` by convention.
    pub name: String,
    /// Logical group (e.g. `engine`), used for derived cross-variant ratios.
    pub group: String,
    /// Problem size (bins, vertices, or grid width — see `unit`).
    pub n: u64,
    /// Work items performed per timed iteration (rounds, steps, trials).
    pub items_per_iter: u64,
    /// What one work item is: the throughput unit is `<unit>/s`.
    pub unit: String,
    /// Number of timed repetitions the summary is computed from.
    pub reps: usize,
    /// Fastest repetition, in nanoseconds per iteration.
    pub min_ns: f64,
    /// Median repetition, in nanoseconds per iteration — the headline
    /// number (robust to one-off scheduling noise).
    pub median_ns: f64,
    /// Mean over repetitions, in nanoseconds per iteration.
    pub mean_ns: f64,
    /// `items_per_iter / median_seconds` — the headline throughput.
    pub throughput_per_sec: f64,
}

/// Identification half of a benchmark: everything except the timings.
#[derive(Debug, Clone)]
pub struct Spec {
    /// Unique benchmark name, `group/variant` by convention.
    pub name: String,
    /// Logical group.
    pub group: String,
    /// Problem size.
    pub n: u64,
    /// Work items per timed iteration.
    pub items_per_iter: u64,
    /// Throughput unit (`rounds`, `steps`, `trials`, ...).
    pub unit: String,
}

impl Spec {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        group: impl Into<String>,
        n: u64,
        items_per_iter: u64,
        unit: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            group: group.into(),
            n,
            items_per_iter,
            unit: unit.into(),
        }
    }
}

/// Median of a non-empty sample (mean of the middle two for even sizes).
/// Thin wrapper over [`rbb_stats::median`] so the bench summary can never
/// diverge from the stats crate's definition.
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of an empty sample");
    rbb_stats::median(samples)
}

/// Times `routine`: `warmup` untimed iterations (cache/branch-predictor
/// warm-up and, for the engines, burn-in to the stationary load profile),
/// then `reps` timed iterations summarized into a [`BenchResult`].
pub fn measure(spec: Spec, warmup: usize, reps: usize, mut routine: impl FnMut()) -> BenchResult {
    let reps = reps.max(1);
    for _ in 0..warmup {
        routine();
    }
    let mut samples_ns = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        routine();
        samples_ns.push(start.elapsed().as_secs_f64() * 1e9);
    }
    let median_ns = median(&samples_ns);
    let min_ns = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
    let mean_ns = samples_ns.iter().sum::<f64>() / reps as f64;
    BenchResult {
        throughput_per_sec: if median_ns > 0.0 {
            spec.items_per_iter as f64 * 1e9 / median_ns
        } else {
            0.0
        },
        name: spec.name,
        group: spec.group,
        n: spec.n,
        items_per_iter: spec.items_per_iter,
        unit: spec.unit,
        reps,
        min_ns,
        median_ns,
        mean_ns,
    }
}

/// Cross-benchmark numbers derived from the raw measurements. `None` fields
/// render as JSON `null` when the contributing benchmarks were filtered out.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Derived {
    /// Median throughput of `engine/scalar`, in rounds/sec.
    pub engine_rounds_per_sec_scalar: Option<f64>,
    /// Median throughput of `engine/batched`, in rounds/sec.
    pub engine_rounds_per_sec_batched: Option<f64>,
    /// `batched / scalar` — the perf-gate headline; `ci.sh` enforces a
    /// minimum via `--min-engine-speedup`.
    pub engine_speedup_batched_vs_scalar: Option<f64>,
    /// Median throughput of `engine/sparse` (the sparse occupancy engine at
    /// `m/n ≤ 1/64`), in rounds/sec.
    pub engine_rounds_per_sec_sparse: Option<f64>,
    /// Median throughput of `engine/sparse-baseline` (the dense engine on
    /// the same `(n, m)` workload), in rounds/sec.
    pub engine_rounds_per_sec_sparse_baseline: Option<f64>,
    /// `sparse / sparse-baseline` — the sparse-regime gate; `ci.sh`
    /// enforces a minimum via `--min-sparse-speedup`.
    pub engine_speedup_sparse_vs_dense: Option<f64>,
    /// Median throughput of `engine/sharded` (the sharded engine, large
    /// dense regime), in rounds/sec.
    pub engine_rounds_per_sec_sharded: Option<f64>,
    /// Median throughput of `engine/sharded-baseline` (the dense engine on
    /// the same workload), in rounds/sec.
    pub engine_rounds_per_sec_sharded_baseline: Option<f64>,
    /// `sharded / sharded-baseline` — the sharded-engine gate; `ci.sh`
    /// enforces a minimum via `--min-sharded-speedup` when the machine has
    /// at least as many cores as the benchmark has shards (the ratio is
    /// always recorded, so single-core CI still tracks the trajectory).
    pub engine_speedup_sharded_vs_dense: Option<f64>,
}

impl Derived {
    /// Computes the derived metrics from the measured set.
    pub fn from_results(results: &[BenchResult]) -> Self {
        let throughput = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.throughput_per_sec)
        };
        let ratio = |num: Option<f64>, den: Option<f64>| match (num, den) {
            (Some(x), Some(y)) if y > 0.0 => Some(x / y),
            _ => None,
        };
        let scalar = throughput("engine/scalar");
        let batched = throughput("engine/batched");
        let sparse = throughput("engine/sparse");
        let sparse_baseline = throughput("engine/sparse-baseline");
        let sharded = throughput("engine/sharded");
        let sharded_baseline = throughput("engine/sharded-baseline");
        Self {
            engine_rounds_per_sec_scalar: scalar,
            engine_rounds_per_sec_batched: batched,
            engine_speedup_batched_vs_scalar: ratio(batched, scalar),
            engine_rounds_per_sec_sparse: sparse,
            engine_rounds_per_sec_sparse_baseline: sparse_baseline,
            engine_speedup_sparse_vs_dense: ratio(sparse, sparse_baseline),
            engine_rounds_per_sec_sharded: sharded,
            engine_rounds_per_sec_sharded_baseline: sharded_baseline,
            engine_speedup_sharded_vs_dense: ratio(sharded, sharded_baseline),
        }
    }
}

/// The `BENCH.json` document: schema version, run configuration, raw
/// measurements, and derived ratios. Timings are wall-clock and
/// machine-dependent; comparisons are only meaningful against a baseline
/// captured on the same machine (which is exactly how `ci.sh` uses the
/// batched-vs-scalar speedup — both sides run in the same process).
#[derive(Debug, Clone, serde::Serialize)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Unix timestamp (seconds) the run finished.
    pub generated_unix: u64,
    /// Whether this was a `--quick` smoke run (smaller sizes, fewer reps).
    pub quick: bool,
    /// Worker threads the scheduler benchmarks used.
    pub threads: usize,
    /// Untimed warmup iterations per benchmark.
    pub warmup_iters: usize,
    /// Timed repetitions per benchmark.
    pub reps: usize,
    /// Master seed the benchmark processes were constructed from.
    pub seed: u64,
    /// The raw measurements.
    pub benchmarks: Vec<BenchResult>,
    /// Cross-benchmark ratios.
    pub derived: Derived,
}

impl BenchReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is always renderable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> Spec {
        Spec::new("engine/scalar", "engine", 64, 10, "rounds")
    }

    #[test]
    fn median_odd_even_and_unsorted() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn measure_runs_warmup_plus_reps_and_is_positive() {
        let mut calls = 0usize;
        let r = measure(spec(), 3, 7, || {
            calls += 1;
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert_eq!(calls, 10);
        assert_eq!(r.reps, 7);
        assert!(r.min_ns > 0.0 && r.min_ns <= r.median_ns);
        assert!(r.throughput_per_sec > 0.0);
        assert_eq!(r.items_per_iter, 10);
    }

    #[test]
    fn measure_clamps_zero_reps_to_one() {
        let r = measure(spec(), 0, 0, || {});
        assert_eq!(r.reps, 1);
    }

    #[test]
    fn derived_speedup_from_engine_pair() {
        let mut scalar = measure(spec(), 0, 1, || {});
        scalar.throughput_per_sec = 100.0;
        let mut batched = scalar.clone();
        batched.name = "engine/batched".into();
        batched.throughput_per_sec = 250.0;
        let d = Derived::from_results(&[scalar, batched]);
        assert_eq!(d.engine_rounds_per_sec_scalar, Some(100.0));
        assert_eq!(d.engine_speedup_batched_vs_scalar, Some(2.5));
    }

    #[test]
    fn derived_sparse_speedup_from_pair() {
        let mut sparse = measure(spec(), 0, 1, || {});
        sparse.name = "engine/sparse".into();
        sparse.throughput_per_sec = 900.0;
        let mut baseline = sparse.clone();
        baseline.name = "engine/sparse-baseline".into();
        baseline.throughput_per_sec = 100.0;
        let d = Derived::from_results(&[sparse, baseline]);
        assert_eq!(d.engine_speedup_sparse_vs_dense, Some(9.0));
        assert_eq!(d.engine_speedup_batched_vs_scalar, None);
    }

    #[test]
    fn derived_sharded_speedup_from_pair() {
        let mut sharded = measure(spec(), 0, 1, || {});
        sharded.name = "engine/sharded".into();
        sharded.throughput_per_sec = 300.0;
        let mut baseline = sharded.clone();
        baseline.name = "engine/sharded-baseline".into();
        baseline.throughput_per_sec = 100.0;
        let d = Derived::from_results(&[sharded, baseline]);
        assert_eq!(d.engine_speedup_sharded_vs_dense, Some(3.0));
        assert_eq!(d.engine_rounds_per_sec_sharded, Some(300.0));
        assert_eq!(d.engine_speedup_sparse_vs_dense, None);
    }

    #[test]
    fn derived_is_null_when_engines_filtered_out() {
        let d = Derived::from_results(&[]);
        assert_eq!(d.engine_speedup_batched_vs_scalar, None);
        assert_eq!(d.engine_speedup_sparse_vs_dense, None);
        assert_eq!(d.engine_speedup_sharded_vs_dense, None);
        // ...and the nulls survive serialization.
        let v = serde::Serialize::serialize(&d);
        let text = serde_json::to_string(&v).unwrap();
        assert!(text.contains("\"engine_speedup_batched_vs_scalar\":null"));
    }

    #[test]
    fn report_renders_schema_fields() {
        let results = vec![measure(spec(), 0, 2, || {})];
        let report = BenchReport {
            schema_version: SCHEMA_VERSION,
            generated_unix: 0,
            quick: true,
            threads: 1,
            warmup_iters: 0,
            reps: 2,
            seed: 42,
            derived: Derived::from_results(&results),
            benchmarks: results,
        };
        let json = report.to_json();
        for key in [
            "\"schema_version\": 1",
            "\"benchmarks\"",
            "\"median_ns\"",
            "\"throughput_per_sec\"",
            "\"derived\"",
            "\"unit\": \"rounds\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }
}
