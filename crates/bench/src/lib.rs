//! # rbb-bench — throughput measurement
//!
//! Two entry points:
//!
//! * **`rbb-bench` binary** (`src/main.rs`) — the repo's perf gate: warmup +
//!   repetition + median-throughput measurements of the hot paths (engines,
//!   Tetris, traversal, graph walks, trial scheduler), emitted as a
//!   machine-readable `BENCH.json` (see [`BenchReport`]) and consumed by
//!   `ci.sh` as a compile-and-smoke gate with a minimum engine-speedup
//!   threshold.
//! * **criterion bench targets** (`benches/`): `engine` (load vs identity
//!   engines, scalar vs batched), `tetris`, `samplers` (+ PRNG ablation),
//!   `graphs`, `traversal` (+ bitset ablation), `baselines`, `strategies`
//!   (FIFO/LIFO/random ablation). Run with `cargo bench -p rbb-bench`.
//!
//! This library holds the measurement harness and the `BENCH.json` schema so
//! both stay unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Version of the `BENCH.json` schema emitted by [`BenchReport::to_json`].
/// Bump on any breaking change to the report shape.
/// v2: added the interleaved `engine/weighted-unit` /
/// `engine/weighted-unit-baseline` pair and the
/// `engine_rounds_per_sec_weighted_unit{,_baseline}` +
/// `engine_ratio_weighted_unit_vs_batched` derived fields.
pub const SCHEMA_VERSION: u32 = 2;

/// One measured benchmark: `reps` timed iterations after `warmup` untimed
/// ones, summarized by min/median/mean nanoseconds per iteration and the
/// median-derived throughput.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BenchResult {
    /// Unique benchmark name, `group/variant` by convention.
    pub name: String,
    /// Logical group (e.g. `engine`), used for derived cross-variant ratios.
    pub group: String,
    /// Problem size (bins, vertices, or grid width — see `unit`).
    pub n: u64,
    /// Work items performed per timed iteration (rounds, steps, trials).
    pub items_per_iter: u64,
    /// What one work item is: the throughput unit is `<unit>/s`.
    pub unit: String,
    /// Number of timed repetitions the summary is computed from.
    pub reps: usize,
    /// Fastest repetition, in nanoseconds per iteration.
    pub min_ns: f64,
    /// Median repetition, in nanoseconds per iteration — the headline
    /// number (robust to one-off scheduling noise).
    pub median_ns: f64,
    /// Mean over repetitions, in nanoseconds per iteration.
    pub mean_ns: f64,
    /// `items_per_iter / median_seconds` — the headline throughput.
    pub throughput_per_sec: f64,
    /// For the primary side of a [`measure_paired`] run: the median over
    /// reps of the per-rep throughput ratio against the partner routine
    /// (`partner_ns[i] / self_ns[i]`). Adjacent-in-time reps see the same
    /// machine drift, so this is far tighter than the ratio of the two
    /// medians; tight gates read this. `None` for single measurements and
    /// for the partner side.
    pub paired_ratio: Option<f64>,
}

/// Identification half of a benchmark: everything except the timings.
#[derive(Debug, Clone)]
pub struct Spec {
    /// Unique benchmark name, `group/variant` by convention.
    pub name: String,
    /// Logical group.
    pub group: String,
    /// Problem size.
    pub n: u64,
    /// Work items per timed iteration.
    pub items_per_iter: u64,
    /// Throughput unit (`rounds`, `steps`, `trials`, ...).
    pub unit: String,
}

impl Spec {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        group: impl Into<String>,
        n: u64,
        items_per_iter: u64,
        unit: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            group: group.into(),
            n,
            items_per_iter,
            unit: unit.into(),
        }
    }
}

/// Median of a non-empty sample (mean of the middle two for even sizes).
/// Thin wrapper over [`rbb_stats::median`] so the bench summary can never
/// diverge from the stats crate's definition.
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of an empty sample");
    rbb_stats::median(samples)
}

/// Summarizes timed samples into a [`BenchResult`] (median-derived
/// throughput, min/median/mean ns).
fn summarize(spec: Spec, samples_ns: &[f64]) -> BenchResult {
    let median_ns = median(samples_ns);
    let min_ns = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
    let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    BenchResult {
        throughput_per_sec: if median_ns > 0.0 {
            spec.items_per_iter as f64 * 1e9 / median_ns
        } else {
            0.0
        },
        name: spec.name,
        group: spec.group,
        n: spec.n,
        items_per_iter: spec.items_per_iter,
        unit: spec.unit,
        reps: samples_ns.len(),
        min_ns,
        median_ns,
        mean_ns,
        paired_ratio: None,
    }
}

/// Times `routine`: `warmup` untimed iterations (cache/branch-predictor
/// warm-up and, for the engines, burn-in to the stationary load profile),
/// then `reps` timed iterations summarized into a [`BenchResult`].
pub fn measure(spec: Spec, warmup: usize, reps: usize, mut routine: impl FnMut()) -> BenchResult {
    let reps = reps.max(1);
    for _ in 0..warmup {
        routine();
    }
    let mut samples_ns = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        routine();
        samples_ns.push(start.elapsed().as_secs_f64() * 1e9);
    }
    summarize(spec, &samples_ns)
}

/// Times two routines interleaved (a, b, a, b, …), warmup and timed reps
/// alike, summarizing each side as its own [`BenchResult`].
///
/// On a machine with drifting background load, two *separately* measured
/// medians can disagree by tens of percent even for identical code, which
/// swamps any tight ratio gate. Interleaving exposes both sides to the same
/// drift, so their median ratio stays meaningful at the few-percent scale.
/// Use this for neutrality gates (e.g. the weighted-unit ≤ 5% budget);
/// independent [`measure`] calls are fine for order-of-magnitude speedups.
pub fn measure_paired(
    spec_a: Spec,
    spec_b: Spec,
    warmup: usize,
    reps: usize,
    mut routine_a: impl FnMut(),
    mut routine_b: impl FnMut(),
) -> (BenchResult, BenchResult) {
    let reps = reps.max(1);
    for _ in 0..warmup {
        routine_a();
        routine_b();
    }
    let mut samples_a = Vec::with_capacity(reps);
    let mut samples_b = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        routine_a();
        samples_a.push(start.elapsed().as_secs_f64() * 1e9);
        let start = Instant::now();
        routine_b();
        samples_b.push(start.elapsed().as_secs_f64() * 1e9);
    }
    // Per-rep ratios pair each timing with its in-time neighbor, so machine
    // drift cancels rep by rep instead of only in aggregate.
    let ratios: Vec<f64> = samples_a
        .iter()
        .zip(&samples_b)
        .map(|(&a, &b)| if a > 0.0 { b / a } else { 0.0 })
        .collect();
    let mut result_a = summarize(spec_a, &samples_a);
    result_a.paired_ratio = Some(median(&ratios));
    (result_a, summarize(spec_b, &samples_b))
}

/// Cross-benchmark numbers derived from the raw measurements. `None` fields
/// render as JSON `null` when the contributing benchmarks were filtered out.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Derived {
    /// Median throughput of `engine/scalar`, in rounds/sec.
    pub engine_rounds_per_sec_scalar: Option<f64>,
    /// Median throughput of `engine/batched`, in rounds/sec.
    pub engine_rounds_per_sec_batched: Option<f64>,
    /// `batched / scalar` — the perf-gate headline; `ci.sh` enforces a
    /// minimum via `--min-engine-speedup`.
    pub engine_speedup_batched_vs_scalar: Option<f64>,
    /// Median throughput of `engine/sparse` (the sparse occupancy engine at
    /// `m/n ≤ 1/64`), in rounds/sec.
    pub engine_rounds_per_sec_sparse: Option<f64>,
    /// Median throughput of `engine/sparse-baseline` (the dense engine on
    /// the same `(n, m)` workload), in rounds/sec.
    pub engine_rounds_per_sec_sparse_baseline: Option<f64>,
    /// `sparse / sparse-baseline` — the sparse-regime gate; `ci.sh`
    /// enforces a minimum via `--min-sparse-speedup`.
    pub engine_speedup_sparse_vs_dense: Option<f64>,
    /// Median throughput of `engine/sharded` (the sharded engine, large
    /// dense regime), in rounds/sec.
    pub engine_rounds_per_sec_sharded: Option<f64>,
    /// Median throughput of `engine/sharded-baseline` (the dense engine on
    /// the same workload), in rounds/sec.
    pub engine_rounds_per_sec_sharded_baseline: Option<f64>,
    /// `sharded / sharded-baseline` — the sharded-engine gate; `ci.sh`
    /// enforces a minimum via `--min-sharded-speedup` when the machine has
    /// at least as many cores as the benchmark has shards (the ratio is
    /// always recorded, so single-core CI still tracks the trajectory).
    pub engine_speedup_sharded_vs_dense: Option<f64>,
    /// Median throughput of `engine/weighted-unit` (the dense engine built
    /// through the weighted constructor with all-ones weights — the unit
    /// fast path), in rounds/sec.
    pub engine_rounds_per_sec_weighted_unit: Option<f64>,
    /// Median throughput of `engine/weighted-unit-baseline` (the plain
    /// batched engine on the identical workload, measured interleaved with
    /// `engine/weighted-unit` via [`measure_paired`]), in rounds/sec.
    pub engine_rounds_per_sec_weighted_unit_baseline: Option<f64>,
    /// `weighted-unit / weighted-unit-baseline` — the weighted-layer
    /// neutrality gate; `ci.sh` enforces a minimum via
    /// `--min-weighted-unit-ratio` (0.95 ⇒ the unit-weight fast path may
    /// regress at most 5% against the batched kernel). The baseline is the
    /// `engine/batched` kernel re-measured interleaved with the weighted
    /// side, and the ratio is the per-rep paired median
    /// ([`BenchResult::paired_ratio`]), falling back to the ratio of the
    /// two medians — two independently measured medians drift by far more
    /// than the 5% budget on a shared machine.
    pub engine_ratio_weighted_unit_vs_batched: Option<f64>,
}

impl Derived {
    /// Computes the derived metrics from the measured set.
    pub fn from_results(results: &[BenchResult]) -> Self {
        let throughput = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.throughput_per_sec)
        };
        let ratio = |num: Option<f64>, den: Option<f64>| match (num, den) {
            (Some(x), Some(y)) if y > 0.0 => Some(x / y),
            _ => None,
        };
        let scalar = throughput("engine/scalar");
        let batched = throughput("engine/batched");
        let sparse = throughput("engine/sparse");
        let sparse_baseline = throughput("engine/sparse-baseline");
        let sharded = throughput("engine/sharded");
        let sharded_baseline = throughput("engine/sharded-baseline");
        let weighted_unit = throughput("engine/weighted-unit");
        let weighted_unit_baseline = throughput("engine/weighted-unit-baseline");
        let weighted_unit_paired = results
            .iter()
            .find(|r| r.name == "engine/weighted-unit")
            .and_then(|r| r.paired_ratio);
        Self {
            engine_rounds_per_sec_scalar: scalar,
            engine_rounds_per_sec_batched: batched,
            engine_speedup_batched_vs_scalar: ratio(batched, scalar),
            engine_rounds_per_sec_sparse: sparse,
            engine_rounds_per_sec_sparse_baseline: sparse_baseline,
            engine_speedup_sparse_vs_dense: ratio(sparse, sparse_baseline),
            engine_rounds_per_sec_sharded: sharded,
            engine_rounds_per_sec_sharded_baseline: sharded_baseline,
            engine_speedup_sharded_vs_dense: ratio(sharded, sharded_baseline),
            engine_rounds_per_sec_weighted_unit: weighted_unit,
            engine_rounds_per_sec_weighted_unit_baseline: weighted_unit_baseline,
            engine_ratio_weighted_unit_vs_batched: weighted_unit_paired
                .or_else(|| ratio(weighted_unit, weighted_unit_baseline)),
        }
    }
}

/// The `BENCH.json` document: schema version, run configuration, raw
/// measurements, and derived ratios. Timings are wall-clock and
/// machine-dependent; comparisons are only meaningful against a baseline
/// captured on the same machine (which is exactly how `ci.sh` uses the
/// batched-vs-scalar speedup — both sides run in the same process).
#[derive(Debug, Clone, serde::Serialize)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Unix timestamp (seconds) the run finished.
    pub generated_unix: u64,
    /// Whether this was a `--quick` smoke run (smaller sizes, fewer reps).
    pub quick: bool,
    /// Worker threads the scheduler benchmarks used.
    pub threads: usize,
    /// Untimed warmup iterations per benchmark.
    pub warmup_iters: usize,
    /// Timed repetitions per benchmark.
    pub reps: usize,
    /// Master seed the benchmark processes were constructed from.
    pub seed: u64,
    /// The raw measurements.
    pub benchmarks: Vec<BenchResult>,
    /// Cross-benchmark ratios.
    pub derived: Derived,
}

impl BenchReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is always renderable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> Spec {
        Spec::new("engine/scalar", "engine", 64, 10, "rounds")
    }

    #[test]
    fn median_odd_even_and_unsorted() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn measure_runs_warmup_plus_reps_and_is_positive() {
        let mut calls = 0usize;
        let r = measure(spec(), 3, 7, || {
            calls += 1;
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert_eq!(calls, 10);
        assert_eq!(r.reps, 7);
        assert!(r.min_ns > 0.0 && r.min_ns <= r.median_ns);
        assert!(r.throughput_per_sec > 0.0);
        assert_eq!(r.items_per_iter, 10);
    }

    #[test]
    fn measure_clamps_zero_reps_to_one() {
        let r = measure(spec(), 0, 0, || {});
        assert_eq!(r.reps, 1);
    }

    #[test]
    fn derived_speedup_from_engine_pair() {
        let mut scalar = measure(spec(), 0, 1, || {});
        scalar.throughput_per_sec = 100.0;
        let mut batched = scalar.clone();
        batched.name = "engine/batched".into();
        batched.throughput_per_sec = 250.0;
        let d = Derived::from_results(&[scalar, batched]);
        assert_eq!(d.engine_rounds_per_sec_scalar, Some(100.0));
        assert_eq!(d.engine_speedup_batched_vs_scalar, Some(2.5));
    }

    #[test]
    fn derived_sparse_speedup_from_pair() {
        let mut sparse = measure(spec(), 0, 1, || {});
        sparse.name = "engine/sparse".into();
        sparse.throughput_per_sec = 900.0;
        let mut baseline = sparse.clone();
        baseline.name = "engine/sparse-baseline".into();
        baseline.throughput_per_sec = 100.0;
        let d = Derived::from_results(&[sparse, baseline]);
        assert_eq!(d.engine_speedup_sparse_vs_dense, Some(9.0));
        assert_eq!(d.engine_speedup_batched_vs_scalar, None);
    }

    #[test]
    fn derived_sharded_speedup_from_pair() {
        let mut sharded = measure(spec(), 0, 1, || {});
        sharded.name = "engine/sharded".into();
        sharded.throughput_per_sec = 300.0;
        let mut baseline = sharded.clone();
        baseline.name = "engine/sharded-baseline".into();
        baseline.throughput_per_sec = 100.0;
        let d = Derived::from_results(&[sharded, baseline]);
        assert_eq!(d.engine_speedup_sharded_vs_dense, Some(3.0));
        assert_eq!(d.engine_rounds_per_sec_sharded, Some(300.0));
        assert_eq!(d.engine_speedup_sparse_vs_dense, None);
    }

    #[test]
    fn derived_weighted_unit_ratio_from_pair() {
        let mut baseline = measure(spec(), 0, 1, || {});
        baseline.name = "engine/weighted-unit-baseline".into();
        baseline.throughput_per_sec = 200.0;
        let mut weighted = baseline.clone();
        weighted.name = "engine/weighted-unit".into();
        weighted.throughput_per_sec = 190.0;
        assert_eq!(weighted.paired_ratio, None);
        let d = Derived::from_results(&[baseline.clone(), weighted.clone()]);
        assert_eq!(d.engine_rounds_per_sec_weighted_unit, Some(190.0));
        assert_eq!(d.engine_rounds_per_sec_weighted_unit_baseline, Some(200.0));
        // No per-rep paired ratio recorded → fall back to the median ratio.
        assert_eq!(d.engine_ratio_weighted_unit_vs_batched, Some(0.95));
        // The pair is independent of both the scalar side and the
        // standalone engine/batched entry.
        assert_eq!(d.engine_speedup_batched_vs_scalar, None);
        // A recorded paired ratio wins over the ratio of medians.
        weighted.paired_ratio = Some(0.99);
        let d = Derived::from_results(&[baseline, weighted]);
        assert_eq!(d.engine_ratio_weighted_unit_vs_batched, Some(0.99));
    }

    #[test]
    fn measure_paired_interleaves_and_summarizes_both_sides() {
        let order = std::cell::RefCell::new(String::new());
        let spec_b = Spec::new("engine/b", "engine", 64, 10, "rounds");
        let (ra, rb) = measure_paired(
            spec(),
            spec_b,
            2,
            5,
            || order.borrow_mut().push('a'),
            || order.borrow_mut().push('b'),
        );
        assert_eq!(ra.reps, 5);
        assert_eq!(rb.reps, 5);
        assert!(ra.min_ns >= 0.0 && rb.min_ns >= 0.0);
        assert_eq!(rb.name, "engine/b");
        // The primary side carries the per-rep paired ratio, the partner
        // side does not.
        assert!(ra.paired_ratio.is_some_and(|r| r > 0.0));
        assert_eq!(rb.paired_ratio, None);
        // 2 warmup + 5 timed on each side, strictly alternating.
        assert_eq!(*order.borrow(), "ab".repeat(7));
    }

    #[test]
    fn derived_is_null_when_engines_filtered_out() {
        let d = Derived::from_results(&[]);
        assert_eq!(d.engine_speedup_batched_vs_scalar, None);
        assert_eq!(d.engine_speedup_sparse_vs_dense, None);
        assert_eq!(d.engine_speedup_sharded_vs_dense, None);
        // ...and the nulls survive serialization.
        let v = serde::Serialize::serialize(&d);
        let text = serde_json::to_string(&v).unwrap();
        assert!(text.contains("\"engine_speedup_batched_vs_scalar\":null"));
    }

    #[test]
    fn report_renders_schema_fields() {
        let results = vec![measure(spec(), 0, 2, || {})];
        let report = BenchReport {
            schema_version: SCHEMA_VERSION,
            generated_unix: 0,
            quick: true,
            threads: 1,
            warmup_iters: 0,
            reps: 2,
            seed: 42,
            derived: Derived::from_results(&results),
            benchmarks: results,
        };
        let json = report.to_json();
        for key in [
            "\"schema_version\": 2",
            "\"benchmarks\"",
            "\"median_ns\"",
            "\"throughput_per_sec\"",
            "\"derived\"",
            "\"unit\": \"rounds\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }
}
