//! Engine throughput: one round of the repeated balls-into-bins process.
//!
//! Ablation DESIGN.md §3.1: the load-only engine vs the ball-identity engine
//! at matched `n` — the cost of carrying identities, queues and per-ball
//! stats.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use rbb_core::ball_process::BallProcess;
use rbb_core::config::Config;
use rbb_core::engine::Engine;
use rbb_core::process::LoadProcess;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::strategy::QueueStrategy;

fn bench_load_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("load_engine_step");
    for n in [256usize, 1024, 4096, 16384] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut p = LoadProcess::legitimate_start(n, 42);
            p.run_silent(100); // equilibrate
            b.iter(|| black_box(p.step()));
        });
    }
    g.finish();
}

fn bench_load_engine_batched(c: &mut Criterion) {
    let mut g = c.benchmark_group("load_engine_step_batched");
    for n in [256usize, 1024, 4096, 16384] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut p = LoadProcess::legitimate_start(n, 42);
            p.run_silent(100); // equilibrate
            b.iter(|| black_box(p.step_batched()));
        });
    }
    g.finish();
}

fn bench_ball_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("ball_engine_step");
    for n in [256usize, 1024, 4096, 16384] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut p = BallProcess::new(
                Config::one_per_bin(n),
                QueueStrategy::Fifo,
                Xoshiro256pp::seed_from(42),
            );
            for _ in 0..100 {
                p.step();
            }
            b.iter(|| black_box(p.step()));
        });
    }
    g.finish();
}

fn bench_convergence(c: &mut Criterion) {
    // Full Theorem-1(b) convergence run from the worst start.
    let mut g = c.benchmark_group("convergence_from_all_in_one");
    g.sample_size(20);
    for n in [256usize, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let thr = rbb_core::config::LegitimacyThreshold::default();
            b.iter(|| {
                let mut p =
                    LoadProcess::new(Config::all_in_one(n, n as u32), Xoshiro256pp::seed_from(7));
                black_box(p.run_until(20 * n as u64, |c| thr.is_legitimate(c)))
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_load_engine,
    bench_load_engine_batched,
    bench_ball_engine,
    bench_convergence
);
criterion_main!(benches);
