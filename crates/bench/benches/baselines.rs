//! Baseline-process throughput: one-shot throws, d-choice rounds, the
//! independent-walks round, and Jackson-network events.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use rbb_baselines::{DChoiceProcess, IndependentWalks, JacksonNetwork};
use rbb_core::rng::Xoshiro256pp;
use rbb_core::sampling::random_assignment;

fn bench_oneshot(c: &mut Criterion) {
    let mut g = c.benchmark_group("oneshot_throw");
    for n in [1024usize, 16384] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = Xoshiro256pp::seed_from(1);
            b.iter(|| black_box(random_assignment(&mut rng, n, n as u64)));
        });
    }
    g.finish();
}

fn bench_dchoice(c: &mut Criterion) {
    let mut g = c.benchmark_group("dchoice_step");
    let n = 4096usize;
    for d in [1usize, 2, 3] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let mut p = DChoiceProcess::legitimate_start(n, d, 2);
            for _ in 0..50 {
                p.step();
            }
            b.iter(|| black_box(p.step()));
        });
    }
    g.finish();
}

fn bench_independent(c: &mut Criterion) {
    let n = 4096usize;
    let mut g = c.benchmark_group("independent_walks_step");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function(BenchmarkId::from_parameter(n), |b| {
        let mut p = IndependentWalks::legitimate_start(n, 3);
        b.iter(|| {
            p.step();
            black_box(p.config().max_load())
        });
    });
    g.finish();
}

fn bench_jackson(c: &mut Criterion) {
    let mut g = c.benchmark_group("jackson_event");
    g.throughput(Throughput::Elements(1));
    for n in [1024usize, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut j = JacksonNetwork::legitimate_start(n, 4);
            for _ in 0..1000 {
                j.step();
            }
            b.iter(|| black_box(j.step()));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_oneshot,
    bench_dchoice,
    bench_independent,
    bench_jackson
);
criterion_main!(benches);
