//! Traversal engine throughput and the DESIGN.md §3.5 bitset ablation:
//! word-packed `FixedBitSet` vs a naive `Vec<bool>` for visited tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use rbb_core::rng::Xoshiro256pp;
use rbb_core::strategy::QueueStrategy;
use rbb_traversal::{single_token_cover_time, FixedBitSet, Traversal};

fn bench_traversal_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("traversal_step");
    for n in [256usize, 1024, 4096] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut t = Traversal::new(n, QueueStrategy::Fifo, 1);
            for _ in 0..50 {
                t.step();
            }
            b.iter(|| {
                t.step();
                black_box(t.covered_tokens())
            });
        });
    }
    g.finish();
}

fn bench_bitset_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("visited_set_insert_and_check_full");
    let n = 4096usize;
    g.throughput(Throughput::Elements(1));
    g.bench_function("fixed_bitset", |b| {
        let mut rng = Xoshiro256pp::seed_from(2);
        let mut s = FixedBitSet::new(n);
        b.iter(|| {
            let i = rng.uniform_usize(n);
            s.insert(i);
            black_box(s.is_full())
        });
    });
    g.bench_function("vec_bool", |b| {
        let mut rng = Xoshiro256pp::seed_from(2);
        let mut v = vec![false; n];
        b.iter(|| {
            let i = rng.uniform_usize(n);
            v[i] = true;
            // Naive fullness check: scan (this is the cost the packed
            // counter avoids).
            black_box(v.iter().all(|&x| x))
        });
    });
    g.finish();
}

fn bench_cover_small(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_cover_run");
    g.sample_size(10);
    g.bench_function("parallel_n128", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut t = Traversal::new(128, QueueStrategy::Fifo, seed);
            black_box(t.run_to_cover(10_000_000))
        });
    });
    g.bench_function("single_token_n128", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(single_token_cover_time(128, seed, 10_000_000))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_traversal_step,
    bench_bitset_ablation,
    bench_cover_small
);
criterion_main!(benches);
