//! Sampler and PRNG micro-benchmarks, including the DESIGN.md §3.3 ablation:
//! our xoshiro256++ vs `rand::rngs::StdRng` for the uniform-bin draw that
//! dominates every engine's inner loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use rand::{RngExt, SeedableRng};
use rbb_core::rng::Xoshiro256pp;
use rbb_core::sampling::{binomial, geometric, throw_uniform};

fn bench_prng_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("prng_uniform_draw");
    g.throughput(Throughput::Elements(1));
    g.bench_function("xoshiro256pp", |b| {
        let mut rng = Xoshiro256pp::seed_from(1);
        b.iter(|| black_box(rng.uniform_usize(1024)));
    });
    g.bench_function("stdrng", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        b.iter(|| black_box(rng.random_range(0..1024usize)));
    });
    g.finish();
}

fn bench_binomial(c: &mut Criterion) {
    let mut g = c.benchmark_group("binomial_sampler");
    // The Lemma-5 law: tiny mean.
    g.bench_function("B(3n/4, 1/n) n=1024", |b| {
        let mut rng = Xoshiro256pp::seed_from(2);
        b.iter(|| black_box(binomial(&mut rng, 768, 1.0 / 1024.0)));
    });
    // The batched-Tetris law: mean λn.
    g.bench_function("B(n, 0.75) n=1024", |b| {
        let mut rng = Xoshiro256pp::seed_from(3);
        b.iter(|| black_box(binomial(&mut rng, 1024, 0.75)));
    });
    g.finish();
}

fn bench_geometric(c: &mut Criterion) {
    c.bench_function("geometric_p_quarter", |b| {
        let mut rng = Xoshiro256pp::seed_from(4);
        b.iter(|| black_box(geometric(&mut rng, 0.25)));
    });
}

fn bench_throw_uniform(c: &mut Criterion) {
    // The re-assignment step in isolation (DESIGN.md §3.2).
    let mut g = c.benchmark_group("throw_uniform");
    for n in [1024usize, 16384] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = Xoshiro256pp::seed_from(5);
            let mut loads = vec![0u32; n];
            b.iter(|| {
                throw_uniform(&mut rng, &mut loads, n);
                black_box(&mut loads);
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_prng_ablation,
    bench_binomial,
    bench_geometric,
    bench_throw_uniform
);
criterion_main!(benches);
