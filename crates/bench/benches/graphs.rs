//! Constrained parallel walks on general topologies (E13 substrate) and
//! topology construction costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use rbb_core::rng::Xoshiro256pp;
use rbb_graphs::{complete_with_loops, hypercube, random_regular, ring, torus, GraphLoadProcess};

fn bench_graph_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_walk_step");
    let n = 1024usize;
    let mut rng = Xoshiro256pp::seed_from(1);
    let graphs = vec![
        ("clique+loops", complete_with_loops(n)),
        ("ring", ring(n)),
        ("torus", torus(32, 32)),
        ("hypercube", hypercube(10)),
        ("random-4-regular", random_regular(n, 4, &mut rng)),
    ];
    for (name, graph) in &graphs {
        g.throughput(Throughput::Elements(graph.n() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            let mut p = GraphLoadProcess::one_per_node(graph.clone(), 2);
            for _ in 0..50 {
                p.step();
            }
            b.iter(|| black_box(p.step()));
        });
    }
    g.finish();
}

fn bench_builders(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_build");
    g.sample_size(20);
    g.bench_function("random_regular_n1024_d4", |b| {
        let mut rng = Xoshiro256pp::seed_from(3);
        b.iter(|| black_box(random_regular(1024, 4, &mut rng)));
    });
    g.bench_function("hypercube_d12", |b| {
        b.iter(|| black_box(hypercube(12)));
    });
    g.bench_function("complete_with_loops_n1024", |b| {
        b.iter(|| black_box(complete_with_loops(1024)));
    });
    g.finish();
}

criterion_group!(benches, bench_graph_step, bench_builders);
criterion_main!(benches);
