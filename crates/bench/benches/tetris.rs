//! Tetris process and Lemma-3 coupling throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use rbb_core::config::Config;
use rbb_core::coupling::CoupledRun;
use rbb_core::engine::Engine;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::sampling::random_assignment;
use rbb_core::tetris::{BatchedTetris, Tetris};

fn bench_tetris_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("tetris_step");
    for n in [1024usize, 4096, 16384] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut t = Tetris::new(Config::one_per_bin(n), Xoshiro256pp::seed_from(1));
            for _ in 0..50 {
                t.step();
            }
            b.iter(|| black_box(t.step()));
        });
    }
    g.finish();
}

fn bench_batched_tetris_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("batched_tetris_step");
    for lambda in [0.5f64, 0.75, 0.95] {
        let n = 4096usize;
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("lambda-{lambda}")),
            &lambda,
            |b, &lambda| {
                let mut t =
                    BatchedTetris::new(Config::one_per_bin(n), lambda, Xoshiro256pp::seed_from(2));
                t.run_silent(50);
                b.iter(|| black_box(t.step()));
            },
        );
    }
    g.finish();
}

fn bench_coupled_step(c: &mut Criterion) {
    // Overhead of the joint (original + Tetris) execution vs a lone engine.
    let mut g = c.benchmark_group("coupled_step");
    for n in [1024usize, 4096] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = Xoshiro256pp::seed_from(3);
            let start = loop {
                let cfg = Config::from_loads(random_assignment(&mut rng, n, n as u64));
                if 4 * cfg.empty_bins() >= n {
                    break cfg;
                }
            };
            let mut run = CoupledRun::new(start, 3).unwrap();
            for _ in 0..50 {
                run.step();
            }
            b.iter(|| black_box(run.step()));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_tetris_step,
    bench_batched_tetris_step,
    bench_coupled_step
);
criterion_main!(benches);
