//! Queue-strategy ablation (DESIGN.md §3.4): FIFO vs LIFO vs random
//! selection in the ball-identity engine. The load law is identical; this
//! measures the mechanical cost difference (random pick draws an extra
//! uniform per non-empty bin and swap-removes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use rbb_core::ball_process::BallProcess;
use rbb_core::config::Config;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::strategy::QueueStrategy;

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("strategy_step");
    let n = 4096usize;
    for strategy in QueueStrategy::ALL {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                let mut p =
                    BallProcess::new(Config::one_per_bin(n), strategy, Xoshiro256pp::seed_from(1));
                for _ in 0..50 {
                    p.step();
                }
                b.iter(|| black_box(p.step()));
            },
        );
    }
    g.finish();
}

fn bench_deep_queue_strategies(c: &mut Criterion) {
    // Skewed start: one deep queue stresses the selection path.
    let mut g = c.benchmark_group("strategy_step_deep_queue");
    let n = 4096usize;
    for strategy in QueueStrategy::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                let mut p = BallProcess::new(
                    Config::all_in_one(n, n as u32),
                    strategy,
                    Xoshiro256pp::seed_from(2),
                );
                p.step();
                b.iter(|| black_box(p.step()));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_strategies, bench_deep_queue_strategies);
criterion_main!(benches);
