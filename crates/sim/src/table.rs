//! Aligned plain-text tables — the experiment binaries print the same
//! rows/series a paper table would contain.

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align text.
                let numeric = cell
                    .chars()
                    .all(|c| c.is_ascii_digit() || ".-+eE%".contains(c))
                    && !cell.is_empty();
                if numeric {
                    line.push_str(&" ".repeat(widths[i] - cell.len()));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(widths[i] - cell.len()));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` significant decimals, trimming noise.
pub fn fmt_f64(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["n", "max", "note"]);
        t.row(["256", "12", "ok"]);
        t.row(["16384", "19", "fine"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("n"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric columns right-aligned: "256" ends at same col as "16384".
        let pos_a = lines[2].find("256").unwrap() + 3;
        let pos_b = lines[3].find("16384").unwrap() + 5;
        assert_eq!(pos_a, pos_b);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn empty_table_renders_header() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    fn fmt_f64_digits() {
        assert_eq!(fmt_f64(8.14159, 2), "8.14");
        assert_eq!(fmt_f64(2.0, 1), "2.0");
    }

    #[test]
    fn len_counts_rows() {
        let mut t = Table::new(["a"]);
        t.row(["1"]).row(["2"]);
        assert_eq!(t.len(), 2);
    }
}
