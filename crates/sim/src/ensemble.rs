//! Many-seed ensemble runs with mergeable streaming statistics.
//!
//! An [`EnsembleSpec`] is the declarative description of a *statistical*
//! experiment: one [`ScenarioSpec`] replicated across many independent
//! seeds, a list of per-trial [`MetricSpec`]s to extract, and a report
//! policy (confidence level, quantiles). [`EnsembleSpec::run`] fans the
//! trials out through the work-stealing scheduler ([`run_trials_seeded`])
//! and folds each trial's handful of metric values into mergeable
//! streaming accumulators ([`rbb_stats::MetricAccumulator`]) — no
//! trajectory is ever stored, so peak memory is independent of the round
//! count — and produces an [`EnsembleReport`]: mean/CI, exact quantiles
//! (for integer-valued metrics), and tail probabilities with Wilson
//! intervals per requested threshold.
//!
//! # Determinism
//!
//! Trial `i` runs the scenario with seed `SeedTree::new(master_seed)
//! .trial(i)` — the exact derivation the experiment suite uses for its
//! per-parameter trial loops, so an experiment migrating onto the ensemble
//! API reproduces its historical trajectories bit for bit by setting
//! `master_seed` to its scoped tree's master. Seeds never depend on thread
//! ids or scheduling order and the trial fold happens in trial order, so
//! the rendered JSON report is **byte-identical** for any
//! `RAYON_NUM_THREADS` (CI runs the suite under 1 and 4 threads and diffs
//! the output).
//!
//! Specs serialize to JSON like scenarios do; see `specs/ensemble-*.json`
//! for committed examples and README.md for the schema.

use serde::{DeError, Deserialize, Serialize, Value};

use rbb_core::config::LegitimacyThreshold;
use rbb_core::metrics::ObserverStack;
use rbb_stats::{mean_ci, MetricAccumulator};

use crate::runner::run_trials_seeded;
use crate::seed::SeedTree;
use crate::spec::{ScenarioSpec, SpecError};

/// What an ensemble extracts from each finished trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// `max_{t ≤ T} M(t)` — the window max load (Theorem 1(a)).
    WindowMaxLoad,
    /// Mean of the per-round max load over the window.
    MeanRoundMax,
    /// Max load of the final configuration.
    FinalMaxLoad,
    /// Minimum number of empty bins over the window (Lemmas 1–2).
    MinEmptyBins,
    /// Fraction of observed rounds with fewer than `n/4` empty bins — the
    /// per-round event Lemma 2 bounds by `e^{−αn}`.
    QuarterViolationRate,
    /// First round with a legitimate configuration (missing if never).
    FirstLegitimateRound,
    /// Round at which the scenario's stop condition was met (missing if
    /// the horizon ran out first).
    StopRound,
    /// Rounds actually executed.
    Rounds,
    /// Adversarial faults injected.
    Faults,
    /// `max_{t ≤ T} W(t)` — the window max **weighted** load. On a unit
    /// scenario this coincides with the window max load.
    WeightedWindowMaxLoad,
    /// Weighted max load of the final configuration.
    FinalWeightedMaxLoad,
    /// Bins over their capacity bound in the final configuration (always 0
    /// for unbounded scenarios).
    FinalCapacityViolations,
    /// Fraction of observed rounds with at least one bin over its bound.
    CapacityViolationRate,
}

impl MetricKind {
    /// The spec-layer name (the JSON `kind` string).
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::WindowMaxLoad => "window-max-load",
            MetricKind::MeanRoundMax => "mean-round-max",
            MetricKind::FinalMaxLoad => "final-max-load",
            MetricKind::MinEmptyBins => "min-empty-bins",
            MetricKind::QuarterViolationRate => "quarter-violation-rate",
            MetricKind::FirstLegitimateRound => "first-legitimate-round",
            MetricKind::StopRound => "stop-round",
            MetricKind::Rounds => "rounds",
            MetricKind::Faults => "faults",
            MetricKind::WeightedWindowMaxLoad => "weighted-window-max-load",
            MetricKind::FinalWeightedMaxLoad => "final-weighted-max-load",
            MetricKind::FinalCapacityViolations => "final-capacity-violations",
            MetricKind::CapacityViolationRate => "capacity-violation-rate",
        }
    }

    /// Parses a JSON `kind` string.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "window-max-load" => MetricKind::WindowMaxLoad,
            "mean-round-max" => MetricKind::MeanRoundMax,
            "final-max-load" => MetricKind::FinalMaxLoad,
            "min-empty-bins" => MetricKind::MinEmptyBins,
            "quarter-violation-rate" => MetricKind::QuarterViolationRate,
            "first-legitimate-round" => MetricKind::FirstLegitimateRound,
            "stop-round" => MetricKind::StopRound,
            "rounds" => MetricKind::Rounds,
            "faults" => MetricKind::Faults,
            "weighted-window-max-load" => MetricKind::WeightedWindowMaxLoad,
            "final-weighted-max-load" => MetricKind::FinalWeightedMaxLoad,
            "final-capacity-violations" => MetricKind::FinalCapacityViolations,
            "capacity-violation-rate" => MetricKind::CapacityViolationRate,
            _ => return None,
        })
    }

    /// Every metric kind, in report order.
    pub fn all() -> [MetricKind; 13] {
        [
            MetricKind::WindowMaxLoad,
            MetricKind::MeanRoundMax,
            MetricKind::FinalMaxLoad,
            MetricKind::MinEmptyBins,
            MetricKind::QuarterViolationRate,
            MetricKind::FirstLegitimateRound,
            MetricKind::StopRound,
            MetricKind::Rounds,
            MetricKind::Faults,
            MetricKind::WeightedWindowMaxLoad,
            MetricKind::FinalWeightedMaxLoad,
            MetricKind::FinalCapacityViolations,
            MetricKind::CapacityViolationRate,
        ]
    }
}

/// One requested metric: what to extract plus the tail thresholds to count
/// (`P(X >= t)` columns with Wilson intervals).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSpec {
    /// What to extract from each trial.
    pub kind: MetricKind,
    /// Exceedance thresholds (may be empty).
    pub thresholds: Vec<f64>,
}

impl MetricSpec {
    /// A metric with no tail thresholds.
    pub fn plain(kind: MetricKind) -> Self {
        Self {
            kind,
            thresholds: Vec::new(),
        }
    }

    /// A metric with tail thresholds.
    pub fn with_thresholds(kind: MetricKind, thresholds: Vec<f64>) -> Self {
        Self { kind, thresholds }
    }
}

/// Report policy: confidence level and quantiles.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReportSpec {
    /// Two-sided confidence level for mean CIs and Wilson tails
    /// (default 0.95).
    pub level: Option<f64>,
    /// Quantiles to report for integer-valued metrics
    /// (default `[0.5, 0.9, 0.99]`).
    pub quantiles: Option<Vec<f64>>,
}

impl ReportSpec {
    /// The resolved confidence level.
    pub fn level_or_default(&self) -> f64 {
        self.level.unwrap_or(0.95)
    }

    /// The resolved quantile list.
    pub fn quantiles_or_default(&self) -> Vec<f64> {
        self.quantiles
            .clone()
            .unwrap_or_else(|| vec![0.5, 0.9, 0.99])
    }
}

/// A declarative many-seed ensemble: scenario × replications × metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleSpec {
    /// The scenario to replicate. Its own `seed` field is ignored; trial
    /// seeds derive from `master_seed` (see the module docs).
    pub scenario: ScenarioSpec,
    /// Root of the trial seed derivation.
    pub master_seed: u64,
    /// Number of independent trials.
    pub replications: usize,
    /// Metrics to extract per trial.
    pub metrics: Vec<MetricSpec>,
    /// Report policy (`null` for defaults).
    pub report: Option<ReportSpec>,
}

impl EnsembleSpec {
    /// A builder-style constructor with the standard metric set
    /// (window max load + mean round max) and default report policy.
    pub fn new(scenario: ScenarioSpec, master_seed: u64, replications: usize) -> Self {
        Self {
            scenario,
            master_seed,
            replications,
            metrics: vec![
                MetricSpec::plain(MetricKind::WindowMaxLoad),
                MetricSpec::plain(MetricKind::MeanRoundMax),
            ],
            report: None,
        }
    }

    /// Replaces the metric list.
    pub fn with_metrics(mut self, metrics: Vec<MetricSpec>) -> Self {
        self.metrics = metrics;
        self
    }

    /// The resolved report policy.
    pub fn report_or_default(&self) -> ReportSpec {
        self.report.clone().unwrap_or_default()
    }

    /// Structural validation: scenario validity, positive replication
    /// count, a non-empty metric list, sane report policy.
    pub fn validate(&self) -> Result<(), SpecError> {
        self.scenario.validate()?;
        if self.replications == 0 {
            return Err(SpecError("replications must be positive".into()));
        }
        if self.metrics.is_empty() {
            return Err(SpecError("ensemble needs at least one metric".into()));
        }
        let report = self.report_or_default();
        let level = report.level_or_default();
        if !(0.0..1.0).contains(&level) || level <= 0.0 {
            return Err(SpecError(format!(
                "confidence level {level} outside (0, 1)"
            )));
        }
        for q in report.quantiles_or_default() {
            if !(0.0..=1.0).contains(&q) {
                return Err(SpecError(format!("quantile {q} outside [0, 1]")));
            }
        }
        for m in &self.metrics {
            for &t in &m.thresholds {
                if !t.is_finite() {
                    return Err(SpecError(format!(
                        "non-finite threshold for metric '{}'",
                        m.kind.name()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Runs the ensemble: parallel trials, streaming fold, report.
    pub fn run(&self) -> Result<EnsembleReport, SpecError> {
        self.validate()?;
        let needs_max = self
            .metrics
            .iter()
            .any(|m| matches!(m.kind, MetricKind::WindowMaxLoad | MetricKind::MeanRoundMax));
        let needs_empty = self.metrics.iter().any(|m| {
            matches!(
                m.kind,
                MetricKind::MinEmptyBins | MetricKind::QuarterViolationRate
            )
        });
        let needs_legit = self
            .metrics
            .iter()
            .any(|m| m.kind == MetricKind::FirstLegitimateRound);
        let needs_weighted = self
            .metrics
            .iter()
            .any(|m| m.kind == MetricKind::WeightedWindowMaxLoad);
        let needs_capacity = self
            .metrics
            .iter()
            .any(|m| m.kind == MetricKind::CapacityViolationRate);

        // Surface factory errors (e.g. an adversary against a fault-less
        // engine) before fanning out; per-trial construction cannot fail
        // differently because only the seed varies.
        self.scenario.scenario()?;

        let kinds: Vec<MetricKind> = self.metrics.iter().map(|m| m.kind).collect();
        let tree = SeedTree::new(self.master_seed);
        let records: Vec<Vec<Option<f64>>> =
            run_trials_seeded(tree, self.replications, |_i, seed| {
                let mut scenario = self
                    .scenario
                    .scenario_seeded(seed)
                    // rbb-lint: allow(panic, reason = "the spec is validated once before the fan-out; per-seed builds cannot fail")
                    .expect("validated spec builds for every seed");
                let mut stack = ObserverStack::new();
                if needs_max {
                    stack = stack.with_max_load();
                }
                if needs_empty {
                    stack = stack.with_empty_bins();
                }
                if needs_legit {
                    stack = stack.with_legitimacy(LegitimacyThreshold::default());
                }
                if needs_weighted {
                    stack = stack.with_weighted_load();
                }
                if needs_capacity {
                    stack = stack.with_capacity();
                }
                let outcome = scenario.run_observed(&mut stack);
                kinds
                    .iter()
                    .map(|kind| match kind {
                        MetricKind::WindowMaxLoad => {
                            // rbb-lint: allow(panic, reason = "the stack enables exactly the observers the requested statistics need, built above")
                            Some(stack.max_load.as_ref().expect("enabled").window_max() as f64)
                        }
                        MetricKind::MeanRoundMax => {
                            // rbb-lint: allow(panic, reason = "the stack enables exactly the observers the requested statistics need, built above")
                            Some(stack.max_load.as_ref().expect("enabled").mean_round_max())
                        }
                        MetricKind::FinalMaxLoad => {
                            // Cheap accessor: identical to config().max_load()
                            // but O(#occupied) on sparse engines.
                            Some(scenario.engine().max_load() as f64)
                        }
                        MetricKind::MinEmptyBins => {
                            // rbb-lint: allow(panic, reason = "the stack enables exactly the observers the requested statistics need, built above")
                            Some(stack.empty_bins.as_ref().expect("enabled").min_empty() as f64)
                        }
                        MetricKind::QuarterViolationRate => {
                            // rbb-lint: allow(panic, reason = "the stack enables exactly the observers the requested statistics need, built above")
                            let t = stack.empty_bins.as_ref().expect("enabled");
                            (t.rounds() > 0)
                                .then(|| t.violations_below_quarter() as f64 / t.rounds() as f64)
                        }
                        MetricKind::FirstLegitimateRound => stack
                            .legitimacy
                            .as_ref()
                            // rbb-lint: allow(panic, reason = "the stack enables exactly the observers the requested statistics need, built above")
                            .expect("enabled")
                            .first_legitimate_round()
                            .map(|r| r as f64),
                        MetricKind::StopRound => outcome.stop_round.map(|r| r as f64),
                        MetricKind::Rounds => Some(outcome.rounds as f64),
                        MetricKind::Faults => Some(outcome.faults as f64),
                        MetricKind::WeightedWindowMaxLoad => {
                            // rbb-lint: allow(panic, reason = "the stack enables exactly the observers the requested statistics need, built above")
                            Some(stack.weighted_load.as_ref().expect("enabled").window_max() as f64)
                        }
                        MetricKind::FinalWeightedMaxLoad => {
                            Some(scenario.engine().weighted_max_load() as f64)
                        }
                        MetricKind::FinalCapacityViolations => {
                            Some(scenario.engine().capacity_violations() as f64)
                        }
                        MetricKind::CapacityViolationRate => {
                            // rbb-lint: allow(panic, reason = "the stack enables exactly the observers the requested statistics need, built above")
                            let t = stack.capacity.as_ref().expect("enabled");
                            (t.rounds() > 0)
                                .then(|| t.rounds_in_violation() as f64 / t.rounds() as f64)
                        }
                    })
                    .collect()
            });

        // Fold in trial order: the collect above is order-preserving, so
        // the accumulator state — and hence the rendered report — is
        // independent of worker count.
        let mut accs: Vec<MetricAccumulator> = self
            .metrics
            .iter()
            .map(|m| MetricAccumulator::new(m.thresholds.clone()))
            .collect();
        for record in &records {
            for (acc, &value) in accs.iter_mut().zip(record) {
                acc.push(value);
            }
        }

        let report = self.report_or_default();
        let level = report.level_or_default();
        let quantiles = report.quantiles_or_default();
        let metrics = self
            .metrics
            .iter()
            .zip(&accs)
            .map(|(m, acc)| MetricReport::from_accumulator(m, acc, level, &quantiles))
            .collect();
        Ok(EnsembleReport {
            name: self.scenario.name.clone(),
            n: self.scenario.n,
            replications: self.replications,
            master_seed: self.master_seed,
            level,
            metrics,
        })
    }
}

/// A two-sided interval in the report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IntervalReport {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

/// One reported quantile.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QuantileReport {
    /// The requested quantile in `[0, 1]`.
    pub q: f64,
    /// The smallest value `v` with `P(X <= v) >= q`.
    pub value: u64,
}

/// One reported tail probability.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TailReport {
    /// The threshold `t` of `P(X >= t)`.
    pub threshold: f64,
    /// Trials with `X >= t`.
    pub exceed_count: u64,
    /// Empirical tail probability.
    pub probability: f64,
    /// Wilson score interval at the report's confidence level.
    pub wilson: IntervalReport,
}

/// Aggregated statistics for one metric.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricReport {
    /// The metric's kind name.
    pub metric: String,
    /// Trials that produced a value.
    pub count: u64,
    /// Trials that produced no value (unmet stop conditions etc.).
    pub missing: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Normal-approximation CI for the mean.
    pub mean_ci: IntervalReport,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Exact quantiles — present only while every observation was a small
    /// non-negative integer (see `rbb_stats::MetricAccumulator`).
    pub quantiles: Vec<QuantileReport>,
    /// Tail probabilities per requested threshold.
    pub tails: Vec<TailReport>,
}

impl MetricReport {
    fn from_accumulator(
        spec: &MetricSpec,
        acc: &MetricAccumulator,
        level: f64,
        quantiles: &[f64],
    ) -> Self {
        let s = acc.summary();
        let ci = mean_ci(s, level);
        let quantiles = match acc.histogram() {
            Some(h) => quantiles
                .iter()
                .map(|&q| QuantileReport {
                    q,
                    // rbb-lint: allow(panic, reason = "the histogram holds one sample per trial and trials >= 1 is validated")
                    value: h.quantile(q).expect("non-empty histogram") as u64,
                })
                .collect(),
            None => Vec::new(),
        };
        let exc = acc.exceedance();
        let tails = (0..exc.thresholds().len())
            .map(|i| TailReport {
                threshold: exc.thresholds()[i],
                exceed_count: exc.count(i),
                probability: exc.tail(i),
                wilson: exc
                    .wilson(i, level)
                    .map(|w| IntervalReport { lo: w.lo, hi: w.hi })
                    .unwrap_or(IntervalReport { lo: 0.0, hi: 1.0 }),
            })
            .collect();
        MetricReport {
            metric: spec.kind.name().to_string(),
            count: s.count(),
            missing: acc.missing(),
            mean: s.mean(),
            std_dev: s.std_dev(),
            mean_ci: IntervalReport {
                lo: ci.lo,
                hi: ci.hi,
            },
            min: if s.count() == 0 { 0.0 } else { s.min() },
            max: if s.count() == 0 { 0.0 } else { s.max() },
            quantiles,
            tails,
        }
    }

    /// The tail report for a given threshold, if requested.
    pub fn tail_at(&self, threshold: f64) -> Option<&TailReport> {
        self.tails.iter().find(|t| t.threshold == threshold)
    }
}

/// The aggregate result of an ensemble run. Serializes to the JSON report
/// `rbb ensemble` prints; see README.md for the schema.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EnsembleReport {
    /// The scenario's display name.
    pub name: Option<String>,
    /// Requested bin count.
    pub n: usize,
    /// Trials run.
    pub replications: usize,
    /// Seed-tree root.
    pub master_seed: u64,
    /// Confidence level used throughout.
    pub level: f64,
    /// Per-metric aggregates, in spec order.
    pub metrics: Vec<MetricReport>,
}

impl EnsembleReport {
    /// The report for a metric kind, if it was requested.
    pub fn metric(&self, kind: MetricKind) -> Option<&MetricReport> {
        self.metrics.iter().find(|m| m.metric == kind.name())
    }

    /// Renders the pretty-JSON report (the `rbb ensemble` stdout format).
    pub fn to_json(&self) -> String {
        // rbb-lint: allow(panic, reason = "serializing a plain data struct is infallible")
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

// ---------------------------------------------------------------------------
// Serde for the spec-layer enums (the stub derive covers structs only).
// ---------------------------------------------------------------------------

impl Serialize for MetricSpec {
    fn serialize(&self) -> Value {
        let mut entries = vec![("kind".to_string(), Value::Str(self.kind.name().to_string()))];
        if !self.thresholds.is_empty() {
            entries.push(("thresholds".to_string(), self.thresholds.serialize()));
        }
        Value::Object(entries)
    }
}

impl Deserialize for MetricSpec {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let kind = value
            .get("kind")
            .ok_or_else(|| DeError::expected("metric object", value))?;
        let kind = kind
            .as_str()
            .ok_or_else(|| DeError::expected("string `kind`", kind))?;
        let kind = MetricKind::parse(kind)
            .ok_or_else(|| DeError(format!("unknown metric kind '{kind}'")))?;
        let thresholds: Option<Vec<f64>> =
            Deserialize::deserialize(serde::field(value, "thresholds")?)
                .map_err(|e: DeError| e.in_field("thresholds"))?;
        Ok(MetricSpec {
            kind,
            thresholds: thresholds.unwrap_or_default(),
        })
    }
}

impl Serialize for ReportSpec {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("level".to_string(), self.level.serialize()),
            ("quantiles".to_string(), self.quantiles.serialize()),
        ])
    }
}

impl Deserialize for ReportSpec {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        if value.as_object().is_none() {
            return Err(DeError::expected("report object", value));
        }
        let level = Deserialize::deserialize(serde::field(value, "level")?)
            .map_err(|e: DeError| e.in_field("level"))?;
        let quantiles = Deserialize::deserialize(serde::field(value, "quantiles")?)
            .map_err(|e: DeError| e.in_field("quantiles"))?;
        Ok(ReportSpec { level, quantiles })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ArrivalSpec, StartSpec};
    use rbb_core::engine::Engine;
    use rbb_core::metrics::MaxLoadTracker;
    use rbb_core::process::LoadProcess;
    use rbb_core::rng::Xoshiro256pp;

    fn small_ensemble() -> EnsembleSpec {
        let scenario = ScenarioSpec::builder(64)
            .name("unit-ensemble")
            .horizon_rounds(200)
            .build();
        EnsembleSpec::new(scenario, 0xABCD, 16).with_metrics(vec![
            MetricSpec::with_thresholds(MetricKind::WindowMaxLoad, vec![4.0, 17.0]),
            MetricSpec::plain(MetricKind::MeanRoundMax),
            MetricSpec::plain(MetricKind::MinEmptyBins),
            MetricSpec::plain(MetricKind::Rounds),
        ])
    }

    #[test]
    fn ensemble_matches_hand_rolled_trials() {
        let spec = small_ensemble();
        let report = spec.run().unwrap();

        // Hand-rolled reference: same seed derivation, same engine.
        let tree = SeedTree::new(0xABCD);
        let maxes: Vec<u32> = (0..16)
            .map(|i| {
                let seed = tree.trial(i);
                let mut p = LoadProcess::new(
                    rbb_core::config::Config::one_per_bin(64),
                    Xoshiro256pp::seed_from(seed),
                );
                let mut t = MaxLoadTracker::new();
                p.run(200, &mut t);
                t.window_max()
            })
            .collect();
        let wml = report.metric(MetricKind::WindowMaxLoad).unwrap();
        assert_eq!(wml.count, 16);
        assert_eq!(wml.missing, 0);
        let mean = maxes.iter().map(|&m| m as f64).sum::<f64>() / 16.0;
        assert!((wml.mean - mean).abs() < 1e-12);
        assert_eq!(wml.max as u32, *maxes.iter().max().unwrap());
        let exceed_17 = maxes.iter().filter(|&&m| m >= 17).count() as u64;
        assert_eq!(wml.tail_at(17.0).unwrap().exceed_count, exceed_17);
        // Every trial's window max is >= 4 from a one-per-bin start... not
        // guaranteed a priori, but the tail at 4 must match the raw count.
        let exceed_4 = maxes.iter().filter(|&&m| m >= 4).count() as u64;
        assert_eq!(wml.tail_at(4.0).unwrap().exceed_count, exceed_4);
    }

    #[test]
    fn report_is_deterministic_and_quantiles_are_exact() {
        let spec = small_ensemble();
        let a = spec.run().unwrap();
        let b = spec.run().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());

        let wml = a.metric(MetricKind::WindowMaxLoad).unwrap();
        assert_eq!(wml.quantiles.len(), 3); // integer metric: p50/p90/p99
        let mrm = a.metric(MetricKind::MeanRoundMax).unwrap();
        assert!(
            mrm.quantiles.is_empty(),
            "fractional metric has no exact quantiles"
        );
        let rounds = a.metric(MetricKind::Rounds).unwrap();
        assert_eq!(rounds.mean, 200.0);
        assert_eq!(rounds.std_dev, 0.0);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let spec = small_ensemble();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: EnsembleSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        // Defaults: missing report and thresholds parse as empty.
        let sparse = r#"{
            "scenario": {
                "n": 16,
                "start": {"kind": "one-per-bin"},
                "arrival": {"kind": "uniform"},
                "topology": {"kind": "complete"},
                "horizon": {"kind": "rounds", "rounds": 50},
                "stop": "horizon",
                "seed": 1
            },
            "master_seed": 7,
            "replications": 4,
            "metrics": [{"kind": "window-max-load"}]
        }"#;
        let e: EnsembleSpec = serde_json::from_str(sparse).unwrap();
        assert_eq!(e.replications, 4);
        assert!(e.metrics[0].thresholds.is_empty());
        assert_eq!(e.report_or_default().level_or_default(), 0.95);
        e.run().unwrap();
    }

    #[test]
    fn validation_rejects_bad_ensembles() {
        let good = small_ensemble();
        let mut zero_reps = good.clone();
        zero_reps.replications = 0;
        assert!(zero_reps.validate().is_err());
        let mut no_metrics = good.clone();
        no_metrics.metrics.clear();
        assert!(no_metrics.validate().is_err());
        let mut bad_level = good.clone();
        bad_level.report = Some(ReportSpec {
            level: Some(1.5),
            quantiles: None,
        });
        assert!(bad_level.validate().is_err());
        let mut bad_q = good.clone();
        bad_q.report = Some(ReportSpec {
            level: None,
            quantiles: Some(vec![1.2]),
        });
        assert!(bad_q.validate().is_err());
        let mut bad_scenario = good.clone();
        bad_scenario.scenario.n = 1;
        assert!(bad_scenario.validate().is_err());
        let mut bad_threshold = good;
        bad_threshold.metrics[0].thresholds.push(f64::NAN);
        assert!(bad_threshold.validate().is_err());
    }

    #[test]
    fn unknown_metric_kind_is_a_parse_error() {
        let bad = r#"{"kind": "window-min-load"}"#;
        assert!(serde_json::from_str::<MetricSpec>(bad).is_err());
    }

    #[test]
    fn missing_metrics_count_unmet_stop_conditions() {
        // A stop condition that cannot be met within the horizon: legitimacy
        // from an all-in-one start in 2 rounds at n = 64.
        let scenario = ScenarioSpec::builder(64)
            .start(StartSpec::AllInOne)
            .stop(crate::spec::StopSpec::Legitimate)
            .horizon_rounds(2)
            .build();
        let report = EnsembleSpec::new(scenario, 5, 6)
            .with_metrics(vec![MetricSpec::plain(MetricKind::StopRound)])
            .run()
            .unwrap();
        let sr = report.metric(MetricKind::StopRound).unwrap();
        assert_eq!(sr.count + sr.missing, 6);
        assert_eq!(sr.missing, 6, "2 rounds cannot drain bin 0 at n=64");
    }

    #[test]
    fn quarter_violation_rate_is_a_rate() {
        let scenario = ScenarioSpec::builder(32).horizon_rounds(100).build();
        let report = EnsembleSpec::new(scenario, 11, 8)
            .with_metrics(vec![MetricSpec::plain(MetricKind::QuarterViolationRate)])
            .run()
            .unwrap();
        let r = report.metric(MetricKind::QuarterViolationRate).unwrap();
        assert!(r.mean >= 0.0 && r.mean <= 1.0);
        assert_eq!(r.count, 8);
    }

    #[test]
    fn ensemble_runs_tetris_and_dchoice_scenarios() {
        for arrival in [ArrivalSpec::Tetris, ArrivalSpec::DChoice { d: 2 }] {
            let scenario = ScenarioSpec::builder(32)
                .arrival(arrival)
                .horizon_rounds(64)
                .build();
            let report = EnsembleSpec::new(scenario, 3, 4).run().unwrap();
            assert_eq!(report.metrics.len(), 2);
        }
    }

    #[test]
    fn weighted_metric_names_round_trip() {
        for kind in MetricKind::all() {
            assert_eq!(MetricKind::parse(kind.name()), Some(kind), "{kind:?}");
        }
    }

    #[test]
    fn weighted_ensemble_reports_weighted_statistics() {
        use crate::spec::{CapacitiesSpec, WeightsSpec};
        let scenario = ScenarioSpec::builder(64)
            .weights(WeightsSpec::Zipf {
                s: 1.0,
                w_max: Some(16),
            })
            .capacities(CapacitiesSpec::Uniform { c: 4 })
            .start(StartSpec::AllInOne)
            .balls(64)
            .horizon_rounds(150)
            .build();
        let report = EnsembleSpec::new(scenario, 21, 6)
            .with_metrics(vec![
                MetricSpec::plain(MetricKind::WindowMaxLoad),
                MetricSpec::plain(MetricKind::WeightedWindowMaxLoad),
                MetricSpec::plain(MetricKind::FinalWeightedMaxLoad),
                MetricSpec::plain(MetricKind::FinalCapacityViolations),
                MetricSpec::plain(MetricKind::CapacityViolationRate),
            ])
            .run()
            .unwrap();
        let unit = report.metric(MetricKind::WindowMaxLoad).unwrap();
        let weighted = report.metric(MetricKind::WeightedWindowMaxLoad).unwrap();
        // Weighted mass dominates ball counts under a non-unit skew.
        assert!(weighted.mean >= unit.mean);
        assert_eq!(weighted.count, 6);
        let final_w = report.metric(MetricKind::FinalWeightedMaxLoad).unwrap();
        assert!(final_w.mean >= 1.0);
        // A 16-weight ball against capacity 4: violations are structural.
        let rate = report.metric(MetricKind::CapacityViolationRate).unwrap();
        assert!(rate.mean > 0.0 && rate.mean <= 1.0);
        let final_v = report.metric(MetricKind::FinalCapacityViolations).unwrap();
        assert!(final_v.mean >= 1.0, "the heavy ball always violates c=4");
    }

    #[test]
    fn weighted_metrics_on_unit_scenarios_degenerate_to_unit_values() {
        let scenario = ScenarioSpec::builder(64).horizon_rounds(100).build();
        let report = EnsembleSpec::new(scenario, 13, 5)
            .with_metrics(vec![
                MetricSpec::plain(MetricKind::WindowMaxLoad),
                MetricSpec::plain(MetricKind::WeightedWindowMaxLoad),
                MetricSpec::plain(MetricKind::FinalMaxLoad),
                MetricSpec::plain(MetricKind::FinalWeightedMaxLoad),
                MetricSpec::plain(MetricKind::FinalCapacityViolations),
            ])
            .run()
            .unwrap();
        let unit = report.metric(MetricKind::WindowMaxLoad).unwrap();
        let weighted = report.metric(MetricKind::WeightedWindowMaxLoad).unwrap();
        assert_eq!(unit.mean, weighted.mean);
        assert_eq!(
            report.metric(MetricKind::FinalMaxLoad).unwrap().mean,
            report
                .metric(MetricKind::FinalWeightedMaxLoad)
                .unwrap()
                .mean
        );
        assert_eq!(
            report
                .metric(MetricKind::FinalCapacityViolations)
                .unwrap()
                .mean,
            0.0
        );
    }

    #[test]
    fn trial_seeds_match_the_experiment_suite_convention() {
        // The documented migration contract: master_seed = a scoped tree's
        // master reproduces that scope's run_trials_seeded seeds.
        let scope = SeedTree::new(99).scope("n128");
        let via_ensemble = SeedTree::new(scope.master());
        for i in 0..5 {
            assert_eq!(via_ensemble.trial(i), scope.trial(i));
        }
    }
}
