//! The scenario runner: one driver loop for every engine and stop rule.
//!
//! [`ScenarioSpec::scenario`] builds the right engine behind
//! `Box<dyn Engine>` (see the factory table in [`build_engine`]), arms the
//! optional adversary, and returns a [`Scenario`] whose run loop replays
//! exactly the semantics of the historical per-engine run families:
//!
//! * every round: `step_batched` (bit-identical to the scalar path for the
//!   engines that override it), then observers, then — on fault rounds,
//!   if the stop condition has not yet been met — the adversary;
//! * stop conditions are checked before the first step (an immediately
//!   satisfied condition stops at round 0, like `run_until` and
//!   `run_until_all_emptied` did) and after each round.
//!
//! RNG conventions (engine `seed_from(seed)`, traversal `stream(seed, 0)`,
//! adversary `stream(seed, 0xADFE)`) match the pre-spec experiments, so
//! migrated experiments regenerate identical numbers.

use rbb_baselines::DChoiceProcess;
use rbb_core::adversary::{
    Adversary, AllInOneAdversary, FaultSchedule, FollowTheLeaderAdversary, PackedAdversary,
    RandomAdversary,
};
use rbb_core::ball_process::BallProcess;
use rbb_core::config::LegitimacyThreshold;
use rbb_core::engine::Engine;
use rbb_core::metrics::ObserverStack;
use rbb_core::process::LoadProcess;
use rbb_core::rng::Xoshiro256pp;

use crate::seed::{adversary_rng, engine_rng};
use rbb_core::sharded::ShardedLoadProcess;
use rbb_core::sparse::SparseLoadProcess;
use rbb_core::tetris::{BatchedTetris, Tetris};
use rbb_graphs::{GraphLoadProcess, GraphTokenProcess};
use rbb_traversal::Traversal;

use crate::spec::{
    AdversaryKindSpec, ArrivalSpec, EngineSpec, ScenarioSpec, ScheduleSpec, SpecError, StopSpec,
};

/// Builds the engine a spec describes. The factory table:
///
/// | topology | arrival | strategy | stop | engine |
/// |---|---|---|---|---|
/// | complete | uniform | — | any but covered | [`LoadProcess`] / [`SparseLoadProcess`] / [`ShardedLoadProcess`] |
/// | complete | uniform | set | covered | [`Traversal`] |
/// | complete | uniform | set | other | [`BallProcess`] |
/// | complete | d-choice | — | any | [`DChoiceProcess`] |
/// | complete | tetris | — | any | [`Tetris`] |
/// | complete | batched-tetris | — | any | [`BatchedTetris`] |
/// | graph | uniform | — | any but covered | [`GraphLoadProcess`] |
/// | graph | uniform | set | any | [`GraphTokenProcess`] |
///
/// The load-only cell resolves dense vs sparse vs sharded through
/// [`ScenarioSpec::resolved_engine`] (dense and sparse are bit-identical;
/// sharded is bit-identical at `shards: 1` and law-equal above — see the
/// spec module docs); the sparse engine is built from
/// [`StartSpec::build_entries`] without ever allocating a dense `O(n)`
/// start vector, and the sharded engine derives its per-shard streams from
/// the spec seed inside [`ShardedLoadProcess::new`].
///
/// [`StartSpec::build_entries`]: crate::spec::StartSpec::build_entries
pub fn build_engine(spec: &ScenarioSpec) -> Result<Box<dyn Engine>, SpecError> {
    spec.validate()?;
    let seed = spec.seed;
    let m = spec.balls_or_default();

    if !spec.topology.is_complete() {
        let graph = spec.topology.build(spec.n, seed);
        return match spec.strategy {
            None => {
                let config = spec
                    .start
                    .build(graph.n(), m_for_graph(&graph, m, spec)?, seed)?;
                Ok(Box::new(GraphLoadProcess::new(
                    graph,
                    config,
                    engine_rng(seed),
                )))
            }
            Some(s) => Ok(Box::new(GraphTokenProcess::with_strategy(
                graph,
                s.to_core(),
                seed,
            ))),
        };
    }

    match spec.arrival {
        ArrivalSpec::Uniform => match (spec.strategy, spec.stop) {
            (None, _) if spec.weights.is_some() || spec.capacities.is_some() => {
                // The weighted/capacity-observing constructors. Weight
                // assignment is defined in bin order over the dense start
                // configuration, so all three engines build from the dense
                // config; the unit/unbounded configuration of each is the
                // same engine as the plain arm below, bit for bit.
                let config = spec.start.build(spec.n, m, seed)?;
                let weights = spec.core_weights();
                let capacities = spec.core_capacities();
                match spec.resolved_engine() {
                    EngineSpec::Sparse => Ok(Box::new(SparseLoadProcess::with_weights(
                        config,
                        engine_rng(seed),
                        weights,
                        capacities,
                    ))),
                    EngineSpec::Sharded => Ok(Box::new(ShardedLoadProcess::with_weights(
                        config,
                        seed,
                        spec.resolved_shards(),
                        weights,
                        capacities,
                    ))),
                    _ => Ok(Box::new(LoadProcess::with_weights(
                        config,
                        engine_rng(seed),
                        weights,
                        capacities,
                    ))),
                }
            }
            (None, _) => match spec.resolved_engine() {
                EngineSpec::Sparse => {
                    let entries = spec.start.build_entries(spec.n, m, seed)?;
                    Ok(Box::new(SparseLoadProcess::from_entries(
                        spec.n,
                        entries,
                        engine_rng(seed),
                    )))
                }
                EngineSpec::Sharded => {
                    let config = spec.start.build(spec.n, m, seed)?;
                    Ok(Box::new(ShardedLoadProcess::new(
                        config,
                        seed,
                        spec.resolved_shards(),
                    )))
                }
                _ => {
                    let config = spec.start.build(spec.n, m, seed)?;
                    Ok(Box::new(LoadProcess::new(config, engine_rng(seed))))
                }
            },
            (Some(s), StopSpec::Covered) => {
                let config = spec.start.build(spec.n, m, seed)?;
                Ok(Box::new(Traversal::from_config(config, s.to_core(), seed)))
            }
            (Some(s), _) => {
                let config = spec.start.build(spec.n, m, seed)?;
                Ok(Box::new(BallProcess::new(
                    config,
                    s.to_core(),
                    engine_rng(seed),
                )))
            }
        },
        ArrivalSpec::DChoice { d } => {
            let config = spec.start.build(spec.n, m, seed)?;
            Ok(Box::new(DChoiceProcess::new(config, d, engine_rng(seed))))
        }
        ArrivalSpec::Tetris => {
            let config = spec.start.build(spec.n, m, seed)?;
            Ok(Box::new(Tetris::new(config, engine_rng(seed))))
        }
        ArrivalSpec::BatchedTetris { lambda } => {
            let config = spec.start.build(spec.n, m, seed)?;
            Ok(Box::new(BatchedTetris::new(
                config,
                lambda,
                engine_rng(seed),
            )))
        }
    }
}

/// Ball count over a built graph: the requested count, except that a
/// default (`balls: null`) and the one-per-bin start follow the graph's
/// possibly-rounded size (torus/hypercube), where one-per-node is the only
/// consistent count.
fn m_for_graph(graph: &rbb_graphs::Graph, m: u64, spec: &ScenarioSpec) -> Result<u64, SpecError> {
    if spec.balls.is_none() || matches!(spec.start, crate::spec::StartSpec::OnePerBin) {
        return Ok(graph.n() as u64);
    }
    Ok(m)
}

fn build_adversary(kind: AdversaryKindSpec) -> Box<dyn Adversary> {
    match kind {
        AdversaryKindSpec::AllInOne => Box::new(AllInOneAdversary),
        AdversaryKindSpec::Packed { k } => Box::new(PackedAdversary { k }),
        AdversaryKindSpec::FollowTheLeader => Box::new(FollowTheLeaderAdversary),
        AdversaryKindSpec::Random => Box::new(RandomAdversary),
    }
}

/// The armed adversary of a running scenario.
struct FaultArm {
    schedule: FaultSchedule,
    adversary: Box<dyn Adversary>,
    rng: Xoshiro256pp,
}

/// Driver-side stop-condition state.
///
/// Every variant reads the engine through the cheap metric accessors
/// ([`Engine::max_load`], [`Engine::bin_load`], …) rather than a dense
/// [`Engine::config`] snapshot, so stop checking never forces a sparse
/// engine to materialize `O(n)` state per round. Values are identical for
/// dense engines (the accessors default to reading the configuration).
enum StopState {
    Horizon,
    Legitimate(LegitimacyThreshold),
    /// Lemma-4 bookkeeping: the worklist of bins that have never yet been
    /// observed empty (initially-empty bins count as already emptied). It
    /// only ever shrinks, so the per-round cost tracks the unfinished set —
    /// `O(#initially-occupied)` at worst, `O(m)` in the sparse regime.
    AllEmptied {
        never_emptied: Vec<u32>,
    },
    Covered,
}

impl StopState {
    fn init(stop: StopSpec, engine: &dyn Engine) -> Self {
        match stop {
            StopSpec::Horizon => StopState::Horizon,
            StopSpec::Legitimate => StopState::Legitimate(LegitimacyThreshold::default()),
            StopSpec::AllEmptied => {
                let never_emptied = engine.nonempty_bins_list().unwrap_or_else(|| {
                    engine
                        .config()
                        .loads()
                        .iter()
                        .enumerate()
                        .filter(|&(_, &l)| l > 0)
                        // rbb-lint: allow(lossy-cast, reason = "enumerate index < n, validated against the u32 bin-index range")
                        .map(|(u, _)| u as u32)
                        .collect()
                });
                StopState::AllEmptied { never_emptied }
            }
            StopSpec::Covered => StopState::Covered,
        }
    }

    /// Folds the post-step state in (the Lemma-4 "every bin emptied at
    /// least once" bookkeeping).
    fn update(&mut self, engine: &dyn Engine) {
        if let StopState::AllEmptied { never_emptied } = self {
            never_emptied.retain(|&b| engine.bin_load(b as usize) > 0);
        }
    }

    fn met(&self, engine: &dyn Engine) -> bool {
        match self {
            StopState::Horizon => false,
            StopState::Legitimate(thr) => {
                if engine.weighted() {
                    // Weighted legitimacy: the unit bound scaled by the mean
                    // ball weight — `M(q) ≤ ⌈β ln n⌉` on the *weighted* load,
                    // with the threshold adjusted for the total mass.
                    engine.weighted_max_load()
                        <= thr.weighted_bound(engine.n(), engine.total_weight(), engine.balls())
                } else {
                    engine.max_load() <= thr.bound(engine.n())
                }
            }
            StopState::AllEmptied { never_emptied } => never_emptied.is_empty(),
            StopState::Covered => engine.covered() == Some(true),
        }
    }
}

/// What a scenario run produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Rounds actually executed (`== engine.round()` afterwards).
    pub rounds: u64,
    /// The round at which a non-horizon stop condition was first met, if it
    /// was met within the horizon (`None` for plain horizon runs and for
    /// runs that timed out).
    pub stop_round: Option<u64>,
    /// Number of adversarial faults injected.
    pub faults: u64,
}

/// A runnable scenario: engine + optional adversary + stop rule.
///
/// ```
/// use rbb_sim::ScenarioSpec;
///
/// let spec = ScenarioSpec::builder(64).horizon_rounds(500).seed(7).build();
/// let mut scenario = spec.scenario().unwrap();
/// let outcome = scenario.run();
/// assert_eq!(outcome.rounds, 500);
/// assert_eq!(scenario.engine().round(), 500);
/// ```
pub struct Scenario {
    engine: Box<dyn Engine>,
    fault_arm: Option<FaultArm>,
    horizon: u64,
    stop: StopSpec,
}

impl ScenarioSpec {
    /// Validates the spec and constructs the scenario (factory entry point).
    pub fn scenario(&self) -> Result<Scenario, SpecError> {
        let engine = build_engine(self)?;
        let fault_arm = match &self.adversary {
            None => None,
            Some(adv) => {
                if !engine.supports_faults() {
                    return Err(SpecError(
                        "this engine does not support adversarial reassignment".into(),
                    ));
                }
                let schedule = match adv.schedule {
                    ScheduleSpec::Gamma { gamma } => FaultSchedule::gamma_n(gamma, engine.n()),
                    ScheduleSpec::Period { period } => FaultSchedule::every(period),
                };
                Some(FaultArm {
                    schedule,
                    adversary: build_adversary(adv.kind),
                    rng: adversary_rng(self.seed),
                })
            }
        };
        let horizon = self.horizon.resolve(engine.n());
        Ok(Scenario {
            engine,
            fault_arm,
            horizon,
            stop: self.stop,
        })
    }

    /// Convenience: builds the scenario with a different seed (sweeps).
    pub fn scenario_seeded(&self, seed: u64) -> Result<Scenario, SpecError> {
        self.with_seed(seed).scenario()
    }
}

impl Scenario {
    /// The engine, for post-run inspection (final configuration, coverage,
    /// progress).
    pub fn engine(&self) -> &dyn Engine {
        self.engine.as_ref()
    }

    /// The resolved round budget.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Runs the scenario without observers.
    pub fn run(&mut self) -> ScenarioOutcome {
        self.run_observed(&mut ObserverStack::new())
    }

    /// Runs the scenario, feeding every completed round to `observers`.
    ///
    /// The loop reads the engine exclusively through the cheap metric
    /// accessors ([`ObserverStack::observe_engine`], the accessor-based
    /// stop-condition state); a dense [`Engine::config`] snapshot is only
    /// materialized on fault rounds, where the adversary's placement rule
    /// inspects the current configuration. A sparse-engine round therefore
    /// costs `O(#occupied)` end to end, observers included.
    pub fn run_observed(&mut self, observers: &mut ObserverStack) -> ScenarioOutcome {
        let engine = self.engine.as_mut();
        let mut stop = StopState::init(self.stop, engine);
        let mut faults = 0u64;
        let start_round = engine.round();

        if self.stop != StopSpec::Horizon && stop.met(engine) {
            return ScenarioOutcome {
                rounds: 0,
                stop_round: Some(engine.round()),
                faults: 0,
            };
        }

        let mut stop_round = None;
        for _ in 0..self.horizon {
            engine.step_batched();
            observers.observe_engine(engine.round(), engine);
            stop.update(engine);
            if let Some(arm) = &mut self.fault_arm {
                if arm.schedule.is_faulty(engine.round()) && !stop.met(engine) {
                    let placement = arm.adversary.placement(
                        engine.n(),
                        engine.balls() as usize,
                        engine.config(),
                        &mut arm.rng,
                    );
                    engine.apply_fault(&placement);
                    stop.update(engine);
                    faults += 1;
                }
            }
            if self.stop != StopSpec::Horizon && stop.met(engine) {
                stop_round = Some(engine.round());
                break;
            }
        }

        ScenarioOutcome {
            rounds: engine.round() - start_round,
            stop_round,
            faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{StartSpec, StrategySpec, TopologySpec};
    use rbb_core::config::Config;
    use rbb_core::metrics::MaxLoadTracker;

    #[test]
    fn default_spec_runs_the_load_engine_bit_identically() {
        let spec = ScenarioSpec::builder(128)
            .horizon_rounds(400)
            .seed(5)
            .build();
        let mut scenario = spec.scenario().unwrap();
        let mut stack = ObserverStack::new().with_max_load();
        let outcome = scenario.run_observed(&mut stack);
        assert_eq!(outcome.rounds, 400);
        assert_eq!(outcome.stop_round, None);
        assert_eq!(outcome.faults, 0);

        // Hand-built reference.
        let mut p = LoadProcess::new(Config::one_per_bin(128), Xoshiro256pp::seed_from(5));
        let mut t = MaxLoadTracker::new();
        p.run(400, &mut t);
        assert_eq!(p.config(), scenario.engine().config());
        assert_eq!(
            t.window_max(),
            stack.max_load.as_ref().unwrap().window_max()
        );
    }

    #[test]
    fn tetris_all_emptied_matches_run_until_all_emptied() {
        let n = 128;
        for (start, m) in [
            (StartSpec::AllInOne, n as u64),
            (StartSpec::Random { salt: 0xFEED }, n as u64),
        ] {
            let spec = ScenarioSpec::builder(n)
                .arrival(ArrivalSpec::Tetris)
                .start(start)
                .stop(StopSpec::AllEmptied)
                .horizon_rounds(20 * n as u64)
                .seed(11)
                .build();
            let mut scenario = spec.scenario().unwrap();
            let outcome = scenario.run();

            let config = start.build(n, m, 11).unwrap();
            let mut t = Tetris::new(config, Xoshiro256pp::seed_from(11));
            let expect = t.run_until_all_emptied(20 * n as u64);
            assert_eq!(outcome.stop_round, expect, "start {start:?}");
        }
    }

    #[test]
    fn covered_scenario_matches_faulty_cover_time() {
        let n = 48;
        let seed = 3;
        let nf = n as f64;
        let cap = (400.0 * nf * nf.ln().powi(2)) as u64;
        let spec = ScenarioSpec::builder(n)
            .strategy(StrategySpec::Fifo)
            .stop(StopSpec::Covered)
            .adversary(
                AdversaryKindSpec::AllInOne,
                ScheduleSpec::Gamma { gamma: 6 },
            )
            .horizon_rounds(cap)
            .seed(seed)
            .build();
        let mut scenario = spec.scenario().unwrap();
        let outcome = scenario.run();

        let mut adv = AllInOneAdversary;
        let reference = rbb_traversal::faulty_cover_time(
            n,
            rbb_core::strategy::QueueStrategy::Fifo,
            FaultSchedule::gamma_n(6, n),
            &mut adv,
            seed,
            cap,
        );
        assert_eq!(outcome.stop_round, reference.cover_time);
        assert_eq!(outcome.faults, reference.faults_injected);
    }

    #[test]
    fn clean_covered_run_matches_plain_traversal() {
        let n = 32;
        let spec = ScenarioSpec::builder(n)
            .strategy(StrategySpec::Fifo)
            .stop(StopSpec::Covered)
            .horizon_rounds(10_000_000)
            .seed(9)
            .build();
        let outcome = spec.scenario().unwrap().run();
        let mut t = Traversal::new(n, rbb_core::strategy::QueueStrategy::Fifo, 9);
        assert_eq!(outcome.stop_round, t.run_to_cover(10_000_000));
    }

    #[test]
    fn legitimate_stop_matches_run_until() {
        let n = 128;
        let spec = ScenarioSpec::builder(n)
            .start(StartSpec::AllInOne)
            .stop(StopSpec::Legitimate)
            .horizon_rounds(20 * n as u64)
            .seed(6)
            .build();
        let outcome = spec.scenario().unwrap().run();

        let thr = LegitimacyThreshold::default();
        let mut p = LoadProcess::new(Config::all_in_one(n, n as u32), Xoshiro256pp::seed_from(6));
        let expect = p.run_until(20 * n as u64, |c| thr.is_legitimate(c));
        assert_eq!(outcome.stop_round, expect);
        assert!(outcome.stop_round.is_some());
    }

    #[test]
    fn immediate_stop_returns_round_zero() {
        let spec = ScenarioSpec::builder(64)
            .stop(StopSpec::Legitimate)
            .horizon_rounds(100)
            .build();
        let outcome = spec.scenario().unwrap().run();
        assert_eq!(outcome.stop_round, Some(0));
        assert_eq!(outcome.rounds, 0);
    }

    #[test]
    fn graph_topology_engine_matches_hand_built() {
        let spec = ScenarioSpec::builder(64)
            .topology(TopologySpec::Ring)
            .horizon_factor(10)
            .seed(21)
            .build();
        let mut scenario = spec.scenario().unwrap();
        let mut stack = ObserverStack::new().with_max_load();
        scenario.run_observed(&mut stack);

        let mut p = GraphLoadProcess::one_per_node(rbb_graphs::ring(64), 21);
        let mut t = MaxLoadTracker::new();
        p.run(640, &mut t);
        assert_eq!(stack.max_load.unwrap().window_max(), t.window_max());
        assert_eq!(scenario.engine().config(), p.config());
    }

    #[test]
    fn lifo_adversary_graph_combo_needs_zero_new_code() {
        // The motivating example: LIFO + adversary + graph-restricted.
        let spec = ScenarioSpec::builder(32)
            .topology(TopologySpec::Torus)
            .strategy(StrategySpec::Lifo)
            .adversary(
                AdversaryKindSpec::FollowTheLeader,
                ScheduleSpec::Period { period: 50 },
            )
            .stop(StopSpec::Covered)
            .horizon_rounds(2_000_000)
            .seed(13)
            .build();
        let mut scenario = spec.scenario().unwrap();
        let outcome = scenario.run();
        assert!(outcome.faults > 0, "horizon long enough for faults");
        assert!(
            outcome.stop_round.is_some(),
            "torus LIFO walk should still cover"
        );
        // Torus of requested size 32 rounds to 6×6 = 36 nodes.
        assert_eq!(scenario.engine().n(), 36);
    }

    #[test]
    fn dchoice_spec_matches_hand_built() {
        let spec = ScenarioSpec::builder(256)
            .arrival(ArrivalSpec::DChoice { d: 2 })
            .horizon_factor(10)
            .seed(17)
            .build();
        let mut scenario = spec.scenario().unwrap();
        let mut stack = ObserverStack::new().with_max_load();
        scenario.run_observed(&mut stack);

        let mut p = DChoiceProcess::legitimate_start(256, 2, 17);
        let mut t = MaxLoadTracker::new();
        p.run(2560, &mut t);
        assert_eq!(stack.max_load.unwrap().window_max(), t.window_max());
    }

    #[test]
    fn sparse_and_dense_scenarios_agree_bit_for_bit() {
        // Same spec, both engines, observers + legitimacy stop + adversary:
        // outcome and every observed statistic must coincide.
        let base = ScenarioSpec::builder(512)
            .balls(6)
            .start(StartSpec::AllInOne)
            .adversary(
                AdversaryKindSpec::AllInOne,
                ScheduleSpec::Period { period: 37 },
            )
            .horizon_rounds(300)
            .seed(17)
            .build();
        assert_eq!(base.resolved_engine(), EngineSpec::Sparse, "64·6 ≤ 512");
        let dense_spec = ScenarioSpec {
            engine: Some(EngineSpec::Dense),
            ..base.clone()
        };
        let sparse_spec = ScenarioSpec {
            engine: Some(EngineSpec::Sparse),
            ..base
        };

        let mut dense = dense_spec.scenario().unwrap();
        let mut sparse = sparse_spec.scenario().unwrap();
        let mut dense_stack = ObserverStack::new()
            .with_max_load()
            .with_empty_bins()
            .with_legitimacy(LegitimacyThreshold::default())
            .with_trace(10);
        let mut sparse_stack = dense_stack.clone();
        let a = dense.run_observed(&mut dense_stack);
        let b = sparse.run_observed(&mut sparse_stack);
        assert_eq!(a, b);
        assert_eq!(dense.engine().config(), sparse.engine().config());
        assert_eq!(
            dense_stack.max_load.as_ref().unwrap().window_max(),
            sparse_stack.max_load.as_ref().unwrap().window_max()
        );
        assert_eq!(
            dense_stack.empty_bins.as_ref().unwrap().min_empty(),
            sparse_stack.empty_bins.as_ref().unwrap().min_empty()
        );
        assert_eq!(
            dense_stack.trace.as_ref().unwrap().points(),
            sparse_stack.trace.as_ref().unwrap().points()
        );
    }

    #[test]
    fn sparse_all_emptied_stop_matches_dense() {
        for seed in [3u64, 29] {
            let spec = ScenarioSpec::builder(256)
                .balls(4)
                .start(StartSpec::Packed { k: 2 })
                .stop(StopSpec::AllEmptied)
                .horizon_rounds(5_000)
                .seed(seed)
                .build();
            let dense = ScenarioSpec {
                engine: Some(EngineSpec::Dense),
                ..spec.clone()
            }
            .scenario()
            .unwrap()
            .run();
            let sparse = ScenarioSpec {
                engine: Some(EngineSpec::Sparse),
                ..spec
            }
            .scenario()
            .unwrap()
            .run();
            assert_eq!(dense, sparse, "seed {seed}");
            assert!(dense.stop_round.is_some(), "4 balls empty quickly");
        }
    }

    #[test]
    fn sparse_scenario_scales_past_dense_feasibility() {
        // n = 10^7 with 200 balls for 500 rounds: a dense engine would
        // visit 5·10^9 slots; the sparse scenario finishes instantly.
        let spec = ScenarioSpec::builder(10_000_000)
            .balls(200)
            .start(StartSpec::RandomMultinomial { salt: 0xBEEF })
            .horizon_rounds(500)
            .seed(7)
            .build();
        assert_eq!(spec.resolved_engine(), EngineSpec::Sparse);
        let mut scenario = spec.scenario().unwrap();
        let mut stack = ObserverStack::new().with_max_load().with_empty_bins();
        let outcome = scenario.run_observed(&mut stack);
        assert_eq!(outcome.rounds, 500);
        assert_eq!(scenario.engine().balls(), 200);
        assert!(stack.empty_bins.unwrap().min_empty() >= 10_000_000 - 200);
    }

    #[test]
    fn one_shard_scenario_agrees_bit_for_bit_with_dense() {
        // The shards: 1 partition uses the engine-convention stream, so the
        // factory-built sharded scenario must reproduce the dense one
        // exactly — observers, adversary arm and all.
        let base = ScenarioSpec::builder(512)
            .adversary(
                AdversaryKindSpec::Packed { k: 3 },
                ScheduleSpec::Period { period: 41 },
            )
            .horizon_rounds(300)
            .seed(23)
            .build();
        let dense_spec = ScenarioSpec {
            engine: Some(EngineSpec::Dense),
            ..base.clone()
        };
        let sharded_spec = ScenarioSpec {
            engine: Some(EngineSpec::Sharded),
            shards: Some(1),
            ..base
        };
        let mut dense = dense_spec.scenario().unwrap();
        let mut sharded = sharded_spec.scenario().unwrap();
        let mut dense_stack = ObserverStack::new()
            .with_max_load()
            .with_empty_bins()
            .with_trace(10);
        let mut sharded_stack = dense_stack.clone();
        let a = dense.run_observed(&mut dense_stack);
        let b = sharded.run_observed(&mut sharded_stack);
        assert_eq!(a, b);
        assert_eq!(dense.engine().config(), sharded.engine().config());
        assert_eq!(
            dense_stack.trace.as_ref().unwrap().points(),
            sharded_stack.trace.as_ref().unwrap().points()
        );
    }

    #[test]
    fn sharded_scenario_is_reproducible_at_fixed_shard_count() {
        let spec = ScenarioSpec::builder(1000)
            .engine(EngineSpec::Sharded)
            .shards(4)
            .horizon_rounds(200)
            .seed(11)
            .build();
        let run = |spec: &ScenarioSpec| {
            let mut s = spec.scenario().unwrap();
            let mut stack = ObserverStack::new().with_max_load();
            let outcome = s.run_observed(&mut stack);
            (outcome, stack.max_load.unwrap().window_max())
        };
        assert_eq!(run(&spec), run(&spec.clone()));
    }

    #[test]
    fn auto_resolves_sharded_at_large_dense_n_and_builds() {
        // Above the auto threshold the dense load-only cell runs sharded;
        // keep the horizon tiny so the test stays fast at n = 2·10^6.
        let spec = ScenarioSpec::builder(crate::spec::SHARDED_AUTO_MIN_N)
            .horizon_rounds(3)
            .seed(5)
            .build();
        assert_eq!(spec.resolved_engine(), EngineSpec::Sharded);
        let mut scenario = spec.scenario().unwrap();
        let outcome = scenario.run();
        assert_eq!(outcome.rounds, 3);
        assert_eq!(
            scenario.engine().balls(),
            crate::spec::SHARDED_AUTO_MIN_N as u64
        );
    }

    #[test]
    fn unit_weight_spec_builds_the_same_engine() {
        // A `weights: unit` / `capacities: unbounded` spec must reproduce
        // the plain spec's run bit for bit — same engine, same stream.
        use crate::spec::{CapacitiesSpec, WeightsSpec};
        let plain = ScenarioSpec::builder(128)
            .horizon_rounds(300)
            .seed(9)
            .build();
        let unit = ScenarioSpec {
            weights: Some(WeightsSpec::Unit),
            capacities: Some(CapacitiesSpec::Unbounded),
            ..plain.clone()
        };
        let mut a = plain.scenario().unwrap();
        let mut b = unit.scenario().unwrap();
        let mut stack_a = ObserverStack::new().with_max_load();
        let mut stack_b = stack_a.clone();
        assert_eq!(a.run_observed(&mut stack_a), b.run_observed(&mut stack_b));
        assert_eq!(a.engine().config(), b.engine().config());
        assert!(!b.engine().weighted());
        assert_eq!(
            stack_a.max_load.unwrap().window_max(),
            stack_b.max_load.unwrap().window_max()
        );
    }

    #[test]
    fn weighted_spec_matches_hand_built_engine() {
        use crate::spec::{CapacitiesSpec, WeightsSpec};
        let spec = ScenarioSpec::builder(64)
            .weights(WeightsSpec::Zipf {
                s: 1.0,
                w_max: None,
            })
            .capacities(CapacitiesSpec::Uniform { c: 50 })
            .horizon_rounds(200)
            .seed(31)
            .build();
        let mut scenario = spec.scenario().unwrap();
        scenario.run();
        let engine = scenario.engine();
        assert!(engine.weighted());

        let mut p = LoadProcess::with_weights(
            Config::one_per_bin(64),
            Xoshiro256pp::seed_from(31),
            spec.core_weights(),
            spec.core_capacities(),
        );
        for _ in 0..200 {
            p.step_batched();
        }
        assert_eq!(engine.config(), p.config());
        assert_eq!(engine.weighted_max_load(), p.weighted_max_load());
        assert_eq!(engine.total_weight(), p.total_weight());
        assert_eq!(engine.capacity_violations(), p.capacity_violations());
    }

    #[test]
    fn weighted_sparse_and_dense_scenarios_agree_bit_for_bit() {
        use crate::spec::{CapacitiesSpec, WeightsSpec};
        let base = ScenarioSpec::builder(512)
            .balls(6)
            .start(StartSpec::AllInOne)
            .weights(WeightsSpec::Explicit(vec![9, 1, 4, 1, 25, 2]))
            .capacities(CapacitiesSpec::Uniform { c: 30 })
            .horizon_rounds(300)
            .seed(17)
            .build();
        assert_eq!(base.resolved_engine(), EngineSpec::Sparse);
        let dense_spec = ScenarioSpec {
            engine: Some(EngineSpec::Dense),
            ..base.clone()
        };
        let sparse_spec = ScenarioSpec {
            engine: Some(EngineSpec::Sparse),
            ..base
        };
        let mut dense = dense_spec.scenario().unwrap();
        let mut sparse = sparse_spec.scenario().unwrap();
        let a = dense.run();
        let b = sparse.run();
        assert_eq!(a, b);
        assert_eq!(dense.engine().config(), sparse.engine().config());
        assert_eq!(
            dense.engine().weighted_max_load(),
            sparse.engine().weighted_max_load()
        );
        assert_eq!(
            dense.engine().capacity_violations(),
            sparse.engine().capacity_violations()
        );
    }

    #[test]
    fn weighted_legitimate_stop_uses_the_weighted_bound() {
        use crate::spec::WeightsSpec;
        // All mass in one bin with heavy balls: the run must stop at the
        // first round whose *weighted* max load clears the weighted bound.
        let n = 128;
        let spec = ScenarioSpec::builder(n)
            .start(StartSpec::AllInOne)
            .balls(n as u64)
            .weights(WeightsSpec::Zipf {
                s: 1.0,
                w_max: Some(8),
            })
            .stop(StopSpec::Legitimate)
            .horizon_rounds(40 * n as u64)
            .seed(6)
            .build();
        let mut scenario = spec.scenario().unwrap();
        let outcome = scenario.run();
        let stop_round = outcome.stop_round.expect("legitimizes within horizon");

        // Replay by hand against the weighted threshold.
        let thr = LegitimacyThreshold::default();
        let mut p = LoadProcess::with_weights(
            Config::all_in_one(n, n as u32),
            Xoshiro256pp::seed_from(6),
            spec.core_weights(),
            spec.core_capacities(),
        );
        let bound = thr.weighted_bound(n, p.total_weight(), p.balls());
        let mut expect = None;
        for _ in 0..40 * n as u64 {
            p.step_batched();
            if p.weighted_max_load() <= bound {
                expect = Some(p.round());
                break;
            }
        }
        assert_eq!(Some(stop_round), expect);
        // The weighted stop is strictly later than the unit-load stop
        // would be at this skew: the weighted max dominates the unit max.
        assert!(scenario.engine().weighted_max_load() <= bound);
    }

    #[test]
    fn fault_arm_requires_engine_support() {
        let spec = ScenarioSpec::builder(64)
            .arrival(ArrivalSpec::DChoice { d: 2 })
            .adversary(
                AdversaryKindSpec::AllInOne,
                ScheduleSpec::Gamma { gamma: 6 },
            )
            .build();
        assert!(spec.scenario().is_err());
    }

    #[test]
    fn outcome_counts_faults_on_horizon_runs() {
        let spec = ScenarioSpec::builder(64)
            .adversary(
                AdversaryKindSpec::AllInOne,
                ScheduleSpec::Period { period: 100 },
            )
            .horizon_rounds(1000)
            .seed(2)
            .build();
        let outcome = spec.scenario().unwrap().run();
        assert_eq!(outcome.rounds, 1000);
        assert_eq!(outcome.faults, 10);
        assert_eq!(outcome.stop_round, None);
    }
}
