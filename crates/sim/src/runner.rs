//! Parallel trial execution.
//!
//! Experiments are embarrassingly parallel over independent trials; per the
//! hpc-parallel guides we use rayon's parallel iterators for the fan-out.
//! Determinism: each trial's RNG is derived from `(seed tree, trial index)`,
//! so results are independent of thread count and scheduling.

use rayon::prelude::*;

use crate::seed::SeedTree;
use rbb_core::rng::Xoshiro256pp;

/// Runs `trials` independent trials in parallel. `f(trial_index, rng)`
/// receives a dedicated RNG; results are returned in trial order.
pub fn run_trials<T: Send>(
    seeds: SeedTree,
    trials: usize,
    f: impl Fn(usize, Xoshiro256pp) -> T + Sync,
) -> Vec<T> {
    (0..trials)
        .into_par_iter()
        .map(|i| f(i, seeds.trial_rng(i as u64)))
        .collect()
}

/// Like [`run_trials`], but hands each trial a raw seed instead of an RNG
/// (for trial bodies that need several derived streams).
pub fn run_trials_seeded<T: Send>(
    seeds: SeedTree,
    trials: usize,
    f: impl Fn(usize, u64) -> T + Sync,
) -> Vec<T> {
    (0..trials)
        .into_par_iter()
        .map(|i| f(i, seeds.trial(i as u64)))
        .collect()
}

/// Runs a keyed parameter sweep: for each parameter in `params`, runs
/// `trials` trials in parallel (parameters are processed sequentially so
/// that progress output stays ordered). Returns `(param, results)` pairs.
pub fn sweep<P: Clone + Sync, T: Send>(
    seeds: SeedTree,
    params: &[P],
    trials: usize,
    scope_name: impl Fn(&P) -> String,
    f: impl Fn(&P, usize, Xoshiro256pp) -> T + Sync,
) -> Vec<(P, Vec<T>)> {
    params
        .iter()
        .map(|p| {
            let scope = seeds.scope(&scope_name(p));
            let results = (0..trials)
                .into_par_iter()
                .map(|i| f(p, i, scope.trial_rng(i as u64)))
                .collect();
            (p.clone(), results)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_trial_order() {
        let out = run_trials(SeedTree::new(1), 64, |i, _rng| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_runs() {
        let f = |_: usize, mut rng: Xoshiro256pp| rng.next_u64();
        let a = run_trials(SeedTree::new(2), 32, f);
        let b = run_trials(SeedTree::new(2), 32, f);
        assert_eq!(a, b);
    }

    #[test]
    fn trials_get_distinct_rngs() {
        let out = run_trials(SeedTree::new(3), 16, |_, mut rng| rng.next_u64());
        let mut dedup = out.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), out.len());
    }

    #[test]
    fn seeded_variant_matches_tree() {
        let tree = SeedTree::new(4);
        let out = run_trials_seeded(tree, 8, |_, seed| seed);
        let expect: Vec<u64> = (0..8).map(|i| tree.trial(i)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn sweep_scopes_by_parameter() {
        let tree = SeedTree::new(5);
        let results = sweep(
            tree,
            &[10usize, 20],
            4,
            |p| format!("n{p}"),
            |p, _i, mut rng| (*p, rng.next_u64()),
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].1.len(), 4);
        // Different parameters see different random streams.
        assert_ne!(results[0].1[0].1, results[1].1[0].1);
        // Deterministic rerun.
        let again = sweep(
            tree,
            &[10usize, 20],
            4,
            |p| format!("n{p}"),
            |p, _i, mut rng| (*p, rng.next_u64()),
        );
        assert_eq!(results, again);
    }
}
