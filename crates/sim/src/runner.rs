//! Parallel trial execution.
//!
//! Experiments are embarrassingly parallel over independent trials; per the
//! hpc-parallel guides we use rayon's parallel iterators for the fan-out.
//! [`sweep_par`]/[`sweep_par_seeded`] flatten the full (parameter × trial)
//! grid into one fan-out so uneven parameters cannot leave workers idle.
//!
//! # Determinism
//!
//! Every trial's RNG is derived purely from `(seed tree, scope name, trial
//! index)` — never from thread ids, scheduling order, or worker count — and
//! the scheduler's collect is order-preserving. Consequently every function
//! in this module returns bit-identical results for `RAYON_NUM_THREADS=1`
//! and any other thread count, and the parallel grid functions match their
//! sequential counterparts exactly.

use rayon::prelude::*;

use crate::seed::SeedTree;
use rbb_core::rng::Xoshiro256pp;

/// Runs `trials` independent trials in parallel. `f(trial_index, rng)`
/// receives a dedicated RNG; results are returned in trial order.
///
/// # RNG stream
///
/// Trial `i` receives `seeds.trial_rng(i)` — streams disjoint across
/// trials and independent of thread count or scheduling.
pub fn run_trials<T: Send>(
    seeds: SeedTree,
    trials: usize,
    f: impl Fn(usize, Xoshiro256pp) -> T + Sync,
) -> Vec<T> {
    (0..trials)
        .into_par_iter()
        .map(|i| f(i, seeds.trial_rng(i as u64)))
        .collect()
}

/// Like [`run_trials`], but hands each trial a raw seed instead of an RNG
/// (for trial bodies that need several derived streams).
pub fn run_trials_seeded<T: Send>(
    seeds: SeedTree,
    trials: usize,
    f: impl Fn(usize, u64) -> T + Sync,
) -> Vec<T> {
    (0..trials)
        .into_par_iter()
        .map(|i| f(i, seeds.trial(i as u64)))
        .collect()
}

/// Runs a keyed parameter sweep with one parallel fan-out *per parameter*:
/// parameters are visited one after another, each running its `trials`
/// trials in parallel. Prefer [`sweep_par`], which parallelizes the whole
/// (parameter × trial) grid; this variant only remains for callers that
/// interleave per-parameter side effects (e.g. printing a table row as soon
/// as a parameter finishes). Seeds are derived identically in both, so they
/// return identical results. Returns `(param, results)` pairs.
///
/// # RNG stream
///
/// Trial `i` of parameter `p` receives
/// `seeds.scope(scope_name(p)).trial_rng(i)` — identical to [`sweep_par`].
pub fn sweep<P: Clone + Sync, T: Send>(
    seeds: SeedTree,
    params: &[P],
    trials: usize,
    scope_name: impl Fn(&P) -> String,
    f: impl Fn(&P, usize, Xoshiro256pp) -> T + Sync,
) -> Vec<(P, Vec<T>)> {
    params
        .iter()
        .map(|p| {
            let scope = seeds.scope(&scope_name(p));
            let results = (0..trials)
                .into_par_iter()
                .map(|i| f(p, i, scope.trial_rng(i as u64)))
                .collect();
            (p.clone(), results)
        })
        .collect()
}

/// Runs a keyed parameter sweep as one parallel fan-out over the full
/// (parameter × trial) grid, so a parameter with few or cheap trials never
/// leaves workers idle while an expensive one finishes.
///
/// Trial RNGs are derived exactly as in [`sweep`] — from
/// `seeds.scope(scope_name(p)).trial_rng(i)` — so the two functions return
/// identical results, independent of thread count (see the module docs for
/// the determinism contract). Results are grouped back into `(param,
/// results)` pairs in parameter order, trials in trial order.
///
/// # RNG stream
///
/// Trial `i` of parameter `p` receives
/// `seeds.scope(scope_name(p)).trial_rng(i)` — identical to [`sweep`].
pub fn sweep_par<P: Clone + Sync, T: Send>(
    seeds: SeedTree,
    params: &[P],
    trials: usize,
    scope_name: impl Fn(&P) -> String,
    f: impl Fn(&P, usize, Xoshiro256pp) -> T + Sync,
) -> Vec<(P, Vec<T>)> {
    grid_par(seeds, params, trials, scope_name, |p, i, scope| {
        f(p, i, scope.trial_rng(i as u64))
    })
}

/// Like [`sweep_par`], but hands each trial its raw derived seed instead of
/// an RNG (for trial bodies that need several derived streams). The seed for
/// `(p, i)` is `seeds.scope(scope_name(p)).trial(i)` — identical to calling
/// [`run_trials_seeded`] once per parameter on the scoped tree.
pub fn sweep_par_seeded<P: Clone + Sync, T: Send>(
    seeds: SeedTree,
    params: &[P],
    trials: usize,
    scope_name: impl Fn(&P) -> String,
    f: impl Fn(&P, usize, u64) -> T + Sync,
) -> Vec<(P, Vec<T>)> {
    grid_par(seeds, params, trials, scope_name, |p, i, scope| {
        f(p, i, scope.trial(i as u64))
    })
}

/// Shared (parameter × trial) grid fan-out behind [`sweep_par`] and
/// [`sweep_par_seeded`]: flattens the grid into one parallel iterator and
/// regroups the order-preserving collect by parameter.
fn grid_par<P: Clone + Sync, T: Send>(
    seeds: SeedTree,
    params: &[P],
    trials: usize,
    scope_name: impl Fn(&P) -> String,
    f: impl Fn(&P, usize, &SeedTree) -> T + Sync,
) -> Vec<(P, Vec<T>)> {
    if trials == 0 {
        return params.iter().map(|p| (p.clone(), Vec::new())).collect();
    }
    // Scopes are pre-derived once per parameter (they are pure functions of
    // the tree and the name, but there is no reason to re-hash per trial).
    let scopes: Vec<SeedTree> = params.iter().map(|p| seeds.scope(&scope_name(p))).collect();
    let flat: Vec<T> = (0..params.len() * trials)
        .into_par_iter()
        .map(|k| f(&params[k / trials], k % trials, &scopes[k / trials]))
        .collect();
    let mut flat = flat.into_iter();
    params
        .iter()
        .map(|p| (p.clone(), flat.by_ref().take(trials).collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_trial_order() {
        let out = run_trials(SeedTree::new(1), 64, |i, _rng| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_runs() {
        let f = |_: usize, mut rng: Xoshiro256pp| rng.next_u64();
        let a = run_trials(SeedTree::new(2), 32, f);
        let b = run_trials(SeedTree::new(2), 32, f);
        assert_eq!(a, b);
    }

    #[test]
    fn trials_get_distinct_rngs() {
        let out = run_trials(SeedTree::new(3), 16, |_, mut rng| rng.next_u64());
        let mut dedup = out.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), out.len());
    }

    #[test]
    fn seeded_variant_matches_tree() {
        let tree = SeedTree::new(4);
        let out = run_trials_seeded(tree, 8, |_, seed| seed);
        let expect: Vec<u64> = (0..8).map(|i| tree.trial(i)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn sweep_par_matches_sequential_sweep() {
        // The grid fan-out must be indistinguishable from the per-parameter
        // variant: same scope/trial seed derivation, same grouping.
        let tree = SeedTree::new(6);
        let name = |p: &usize| format!("n{p}");
        let body = |p: &usize, i: usize, mut rng: Xoshiro256pp| (*p, i, rng.next_u64());
        let seq = sweep(tree, &[8usize, 16, 32], 5, name, body);
        let par = sweep_par(tree, &[8usize, 16, 32], 5, name, body);
        assert_eq!(seq, par);
    }

    #[test]
    fn sweep_par_seeded_matches_per_param_run_trials_seeded() {
        let tree = SeedTree::new(7);
        let params = [3usize, 9, 27];
        let trials = 4;
        let par = sweep_par_seeded(
            tree,
            &params,
            trials,
            |p| format!("p{p}"),
            |p, i, seed| (*p, i, seed),
        );
        for (k, &p) in params.iter().enumerate() {
            let scope = tree.scope(&format!("p{p}"));
            let expect = run_trials_seeded(scope, trials, |i, seed| (p, i, seed));
            assert_eq!(par[k].0, p);
            assert_eq!(par[k].1, expect);
        }
    }

    #[test]
    fn sweep_par_is_deterministic_across_runs() {
        let run = || {
            sweep_par(
                SeedTree::new(8),
                &[2usize, 4, 6, 8],
                7,
                |p| format!("x{p}"),
                |p, i, mut rng| (*p, i, rng.next_u64()),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sweep_par_uneven_trial_costs_keep_results_ordered() {
        // Parameter 50 is ~100x more expensive per trial than parameter 1:
        // under a static split this shape idled workers; here it must still
        // return exact (param, trial) ordering.
        let out = sweep_par(
            SeedTree::new(9),
            &[1usize, 50],
            8,
            |p| format!("w{p}"),
            |p, i, mut rng| {
                let mut acc = 0u64;
                for _ in 0..(p * p * 40) {
                    acc = acc.wrapping_add(rng.next_u64());
                }
                (*p, i, acc)
            },
        );
        assert_eq!(out.len(), 2);
        for (k, (p, results)) in out.iter().enumerate() {
            assert_eq!(*p, [1, 50][k]);
            assert_eq!(results.len(), 8);
            for (i, &(rp, ri, _)) in results.iter().enumerate() {
                assert_eq!((rp, ri), (*p, i));
            }
        }
    }

    #[test]
    fn sweep_par_zero_trials_and_empty_params() {
        let name = |p: &usize| format!("{p}");
        let body = |p: &usize, _: usize, _: Xoshiro256pp| *p;
        let out = sweep_par(SeedTree::new(10), &[1usize, 2], 0, name, body);
        assert_eq!(out, vec![(1, vec![]), (2, vec![])]);
        let out = sweep_par(SeedTree::new(10), &[], 5, name, body);
        assert!(out.is_empty());
    }

    #[test]
    fn sweep_scopes_by_parameter() {
        let tree = SeedTree::new(5);
        let results = sweep(
            tree,
            &[10usize, 20],
            4,
            |p| format!("n{p}"),
            |p, _i, mut rng| (*p, rng.next_u64()),
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].1.len(), 4);
        // Different parameters see different random streams.
        assert_ne!(results[0].1[0].1, results[1].1[0].1);
        // Deterministic rerun.
        let again = sweep(
            tree,
            &[10usize, 20],
            4,
            |p| format!("n{p}"),
            |p, _i, mut rng| (*p, rng.next_u64()),
        );
        assert_eq!(results, again);
    }
}
