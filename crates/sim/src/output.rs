//! Machine-readable experiment output: JSON records and CSV series, written
//! under `results/` so EXPERIMENTS.md numbers can be regenerated and diffed.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// Where experiment artifacts land (relative to the workspace root).
pub const RESULTS_DIR: &str = "results";

/// A sink for one experiment's artifacts.
#[derive(Debug, Clone)]
pub struct OutputSink {
    dir: PathBuf,
    /// When false (default for tests / --no-write), writes are skipped.
    enabled: bool,
}

impl OutputSink {
    /// A sink writing into `base/experiment_id/`.
    pub fn new(base: impl AsRef<Path>, experiment_id: &str, enabled: bool) -> Self {
        Self {
            dir: base.as_ref().join(experiment_id),
            enabled,
        }
    }

    /// A disabled sink (all writes are no-ops).
    pub fn disabled() -> Self {
        Self {
            dir: PathBuf::new(),
            enabled: false,
        }
    }

    /// Whether writes are performed.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The output directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes a serializable record as pretty JSON to `name.json`.
    pub fn write_json<T: Serialize>(&self, name: &str, value: &T) -> std::io::Result<()> {
        if !self.enabled {
            return Ok(());
        }
        fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(format!("{name}.json"));
        let mut f = fs::File::create(path)?;
        // rbb-lint: allow(panic, reason = "serializing a plain data struct is infallible")
        let s = serde_json::to_string_pretty(value).expect("serialization cannot fail");
        f.write_all(s.as_bytes())?;
        f.write_all(b"\n")
    }

    /// Writes rows of `f64` as CSV with a header to `name.csv`.
    pub fn write_csv(&self, name: &str, header: &[&str], rows: &[Vec<f64>]) -> std::io::Result<()> {
        if !self.enabled {
            return Ok(());
        }
        fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(path)?;
        writeln!(f, "{}", header.join(","))?;
        for row in rows {
            assert_eq!(row.len(), header.len(), "CSV row arity mismatch");
            let line: Vec<String> = row.iter().map(|x| format!("{x}")).collect();
            writeln!(f, "{}", line.join(","))?;
        }
        Ok(())
    }

    /// Writes raw text to `name.txt` (e.g. the rendered table).
    pub fn write_text(&self, name: &str, text: &str) -> std::io::Result<()> {
        if !self.enabled {
            return Ok(());
        }
        fs::create_dir_all(&self.dir)?;
        fs::write(self.dir.join(format!("{name}.txt")), text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Rec {
        n: usize,
        value: f64,
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rbb-output-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn disabled_sink_writes_nothing() {
        let sink = OutputSink::disabled();
        sink.write_json("x", &Rec { n: 1, value: 2.0 }).unwrap();
        assert!(!sink.enabled());
    }

    #[test]
    fn json_roundtrip() {
        let base = tmpdir("json");
        let sink = OutputSink::new(&base, "e99", true);
        sink.write_json("rec", &Rec { n: 5, value: 1.5 }).unwrap();
        let text = fs::read_to_string(base.join("e99/rec.json")).unwrap();
        assert!(text.contains("\"n\": 5"));
        fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn csv_rows_written() {
        let base = tmpdir("csv");
        let sink = OutputSink::new(&base, "e98", true);
        sink.write_csv("series", &["t", "m"], &[vec![1.0, 2.0], vec![3.0, 4.5]])
            .unwrap();
        let text = fs::read_to_string(base.join("e98/series.csv")).unwrap();
        assert_eq!(text, "t,m\n1,2\n3,4.5\n");
        fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn csv_arity_checked() {
        let base = tmpdir("arity");
        let sink = OutputSink::new(&base, "e97", true);
        let _ = sink.write_csv("bad", &["a", "b"], &[vec![1.0]]);
    }

    #[test]
    fn text_written() {
        let base = tmpdir("text");
        let sink = OutputSink::new(&base, "e96", true);
        sink.write_text("table", "hello\n").unwrap();
        assert_eq!(
            fs::read_to_string(base.join("e96/table.txt")).unwrap(),
            "hello\n"
        );
        fs::remove_dir_all(&base).unwrap();
    }
}
