//! Master-seed management: every experiment derives all randomness from one
//! `u64`, so each table in EXPERIMENTS.md is reproducible bit-for-bit.

use rbb_core::rng::{SplitMix64, Xoshiro256pp};

/// The workspace's default master seed (arbitrary but fixed; all published
/// numbers in EXPERIMENTS.md use it).
pub const DEFAULT_MASTER_SEED: u64 = 0x5EED_BA11_2015_0615;

/// A seed tree: derives independent child seeds for named scopes and
/// numbered trials, so adding a new experiment never perturbs the streams
/// of existing ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    master: u64,
}

impl SeedTree {
    /// Creates a tree rooted at `master`.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The root seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Child seed for a named scope (e.g. an experiment id). FNV-1a over the
    /// name, mixed with the master through SplitMix64.
    pub fn scope(&self, name: &str) -> SeedTree {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = SplitMix64::new(self.master ^ h);
        SeedTree {
            master: sm.next_u64(),
        }
    }

    /// Seed for trial `i` in this scope.
    pub fn trial(&self, i: u64) -> u64 {
        let mut sm = SplitMix64::new(
            self.master
                .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        sm.next_u64()
    }

    /// RNG for trial `i` in this scope.
    pub fn trial_rng(&self, i: u64) -> Xoshiro256pp {
        Xoshiro256pp::seed_from(self.trial(i))
    }
}

impl Default for SeedTree {
    fn default() -> Self {
        Self::new(DEFAULT_MASTER_SEED)
    }
}

/// RNG for an engine built from a scenario seed.
///
/// This is the sanctioned construction site for the engine convention
/// (`seed_from(seed)`): every engine factory must call this instead of
/// constructing a `Xoshiro256pp` ad hoc, so the seed-to-stream mapping is
/// defined in exactly one place (`rbb-lint` rule `rng-construct` enforces
/// this).
///
/// # RNG stream
///
/// Returns the engine stream for `seed` — the stream all pre-spec
/// experiments used, so migrated specs regenerate identical trajectories.
/// Construction consumes no draws.
pub fn engine_rng(seed: u64) -> Xoshiro256pp {
    Xoshiro256pp::seed_from(seed)
}

/// RNG for the adversary armed by a scenario.
///
/// # RNG stream
///
/// Returns stream `0xADFE` of `seed` — disjoint from the engine stream by
/// the `Xoshiro256pp::stream` construction, so arming an adversary never
/// perturbs the engine's trajectory. Construction consumes no draws.
pub fn adversary_rng(seed: u64) -> Xoshiro256pp {
    Xoshiro256pp::stream(seed, 0xADFE)
}

/// RNG for an auxiliary, named sub-stream of a scenario seed (start-state
/// salts, spec-level shuffles).
///
/// # RNG stream
///
/// Returns stream `salt` of `seed`. Callers must pick salts that are
/// distinct from each other and from the reserved adversary salt `0xADFE`;
/// the engine stream (salt-free, [`engine_rng`]) is disjoint from every
/// salted stream. Construction consumes no draws.
pub fn salted_rng(seed: u64, salt: u64) -> Xoshiro256pp {
    Xoshiro256pp::stream(seed, salt)
}

/// RNG for the legacy XOR-salted sub-streams (`seed_from(seed ^ salt)`):
/// the committed convention of [`StartSpec::Random`]-style builders and
/// salted topology construction. New call sites should prefer
/// [`salted_rng`], whose streams are disjoint by construction rather than
/// by salt-collision luck — this helper exists so the committed bit-exact
/// trajectories of pre-spec experiments keep regenerating unchanged.
///
/// # RNG stream
///
/// Returns the engine-convention stream of `seed ^ salt`. Construction
/// consumes no draws.
///
/// [`StartSpec::Random`]: crate::spec::StartSpec::Random
pub fn xor_salted_rng(seed: u64, salt: u64) -> Xoshiro256pp {
    Xoshiro256pp::seed_from(seed ^ salt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_are_independent() {
        let t = SeedTree::default();
        assert_ne!(t.scope("e01").master(), t.scope("e02").master());
        assert_ne!(t.scope("e01").master(), t.master());
    }

    #[test]
    fn scoping_is_deterministic() {
        let a = SeedTree::new(7).scope("x").trial(3);
        let b = SeedTree::new(7).scope("x").trial(3);
        assert_eq!(a, b);
    }

    #[test]
    fn trials_differ() {
        let t = SeedTree::default().scope("e01");
        let seeds: Vec<u64> = (0..100).map(|i| t.trial(i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn nested_scopes_differ_from_flat() {
        let t = SeedTree::default();
        assert_ne!(t.scope("a").scope("b").master(), t.scope("ab").master());
    }

    #[test]
    fn trial_rngs_are_decorrelated() {
        let t = SeedTree::default().scope("z");
        let mut r0 = t.trial_rng(0);
        let mut r1 = t.trial_rng(1);
        let same = (0..64).filter(|_| r0.next_u64() == r1.next_u64()).count();
        assert_eq!(same, 0);
    }
}
