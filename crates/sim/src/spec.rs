//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] describes a complete simulation scenario as *data* —
//! bins, balls, initial configuration, arrival model, queue strategy,
//! topology, adversary schedule, horizon, and stop condition — and the
//! [`scenario`](ScenarioSpec::scenario) factory turns it into a runnable
//! [`Scenario`](crate::scenario::Scenario) around the right engine behind
//! the unified [`Engine`](rbb_core::engine::Engine) trait. New scenario
//! combinations (e.g. LIFO + adversary + graph-restricted walks) therefore
//! need zero new code: compose the fields and run.
//!
//! Specs serialize to JSON (`serde_json::to_string_pretty`) and parse back
//! (`serde_json::from_str`) losslessly; `rbb sim --spec <file.json>` runs a
//! committed spec from the command line. See `specs/` in the repository
//! root for examples and README.md for the schema.
//!
//! # Determinism
//!
//! Engine construction is a pure function of `(spec, seed)`: the engine RNG
//! is seeded `seed_from(seed)` (the traversal engine keeps its historical
//! `stream(seed, 0)` convention), randomized starts draw from
//! `seed_from(seed ^ salt)`, randomized topologies from
//! `seed_from(seed ^ salt)`, and the adversary from `stream(seed, 0xADFE)`
//! — exactly the conventions the experiments used before the spec API, so
//! spec-driven runs are bit-identical to the hand-constructed ones.
//!
//! # Dense vs sparse engine (`engine` field)
//!
//! The paper's load-only process on the complete topology is served by two
//! interchangeable engines: the dense
//! [`LoadProcess`](rbb_core::process::LoadProcess) (an `O(n)` scan per
//! round) and the sparse
//! [`SparseLoadProcess`](rbb_core::sparse::SparseLoadProcess)
//! (`O(#non-empty bins + departures)` per round, `O(m)` memory). Because
//! the process consumes randomness only through the round's `d` i.i.d.
//! uniform destination draws — `d` being the number of non-empty bins,
//! never a function of how loads are *stored* — the two engines are
//! **bit-identical in trajectory from the same seed** (pinned by
//! `tests/proptest_sparse.rs` across the factory matrix, faults included).
//! The `engine` field selects between them:
//!
//! * `"dense"` — always the dense engine.
//! * `"sparse"` — always the sparse engine (rejected for specs outside the
//!   load-only uniform/complete cell, which has no sparse implementation).
//! * `"sharded"` — the sharded single-trial engine
//!   ([`ShardedLoadProcess`](rbb_core::sharded::ShardedLoadProcess)), for
//!   large dense load-only cells. Unlike `dense`/`sparse` it draws from
//!   *per-shard* RNG streams, so for `shards > 1` it is equal to the dense
//!   stream **in law, not per seed** (pinned by `tests/proptest_sharded.rs`;
//!   `shards: 1` is bit-identical). Its own contract: for a **fixed** shard
//!   count the trajectory is bit-identical at any `RAYON_NUM_THREADS`. The
//!   optional `shards` field (default [`DEFAULT_SHARDS`]) sets the
//!   partition and is part of the reproducibility key.
//! * `"auto"` (also the default when the field is omitted/`null`) — sparse
//!   iff the spec is in the load-only cell **and** `64·balls ≤ n`
//!   ([`SPARSE_AUTO_RATIO`]). The 1/64 density cut-off is deliberately
//!   conservative: benchmarks put the throughput crossover near 1/100 (a
//!   dense round streams `4n` bytes branchlessly, a sparse round pays a few
//!   hash-map operations per ball), and below 1/64 the sparse engine also
//!   wins `O(n) → O(m)` on memory, which at `n = 10^8` is the difference
//!   between a 400 MB load vector and a few megabytes. Denser load-only
//!   cells at `n ≥ `[`SHARDED_AUTO_MIN_N`] resolve to the sharded engine
//!   (with [`DEFAULT_SHARDS`] shards — never the machine's thread count,
//!   which would break cross-machine reproducibility); everything else is
//!   dense. Dense/sparse trajectories are identical either way; the
//!   sharded pick changes the stream but not the law, and it only fires at
//!   scales where per-seed trajectories were never published.

use serde::{DeError, Deserialize, Serialize, Value};

use rbb_core::config::Config;
use rbb_core::sampling::{random_assignment_entries, random_assignment_multinomial};
use rbb_core::strategy::QueueStrategy;
use rbb_core::weights::{Capacities, Weights, DEFAULT_ZIPF_W_MAX};

/// Validation failure for a [`ScenarioSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// Initial configuration of the balls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartSpec {
    /// One ball per bin (requires `balls == n`) — the legitimate start.
    OnePerBin,
    /// All balls in bin 0 — the worst case for convergence.
    AllInOne,
    /// Balls split evenly over the first `k` bins.
    Packed {
        /// Number of bins the balls are packed into.
        k: usize,
    },
    /// Geometric cascade: bin `i` holds `~m/2^{i+1}` balls.
    Geometric,
    /// One-shot uniform random throw, drawn from `seed ^ salt` — one
    /// uniform draw per ball (the stream every published number pins).
    Random {
        /// XOR-salt applied to the scenario seed for the start's own stream.
        salt: u64,
    },
    /// The same one-shot uniform law as `random`, sampled via binomial
    /// splitting ([`random_assignment_multinomial`]): `O(#occupied)` memory
    /// and a sequential output, the initializer of choice for large-`m`
    /// sparse-regime starts. Equal in law to `random` but **not** per-seed
    /// stream-compatible with it — published `random`-start numbers are
    /// unaffected because this is a distinct start kind.
    RandomMultinomial {
        /// XOR-salt applied to the scenario seed for the start's own stream.
        salt: u64,
    },
}

impl StartSpec {
    /// Builds the initial configuration over `n` bins with `m` balls —
    /// the densified [`build_entries`](StartSpec::build_entries), so each
    /// start layout is defined in exactly one place. Equal to the historic
    /// `Config` constructors (`one_per_bin`, `all_in_one`, `packed`,
    /// `geometric_cascade`, `random_assignment`) configuration-for-
    /// configuration *and*, for `random`, draw-for-draw on the
    /// `seed ^ salt` stream — pinned by the `start_builders_match_config_
    /// constructors` and `build_entries_densify_to_build_for_every_start`
    /// tests.
    pub fn build(&self, n: usize, m: u64, seed: u64) -> Result<Config, SpecError> {
        let mut loads = vec![0u32; n];
        for (b, l) in self.build_entries(n, m, seed)? {
            loads[b as usize] = l;
        }
        Ok(Config::from_loads(loads))
    }

    /// Builds the initial configuration as sparse occupied-bin `(bin, load)`
    /// entries, without ever allocating an `O(n)` vector (except for the
    /// inherently dense `one-per-bin` start). Densifying the result equals
    /// [`build`](StartSpec::build) exactly — same configuration, and for
    /// `random` the same `seed ^ salt` draw stream — so a sparse engine
    /// started from these entries is bit-identical to a dense engine
    /// started from `build`.
    pub fn build_entries(&self, n: usize, m: u64, seed: u64) -> Result<Vec<(u32, u32)>, SpecError> {
        let m32 = u32::try_from(m).map_err(|_| SpecError("balls must fit in u32".into()))?;
        if n == 0 {
            return Err(SpecError("need at least one bin".into()));
        }
        match self {
            StartSpec::OnePerBin => {
                if m != n as u64 {
                    return Err(SpecError(format!(
                        "start one-per-bin requires balls == n (got {m} balls, {n} bins)"
                    )));
                }
                // rbb-lint: allow(lossy-cast, reason = "validate() bounds n by the u32 bin-index range")
                Ok((0..n as u32).map(|b| (b, 1)).collect())
            }
            StartSpec::AllInOne => Ok(vec![(0, m32)]),
            StartSpec::Packed { k } => {
                if *k < 1 || *k > n {
                    return Err(SpecError(format!("packed k = {k} out of range 1..={n}")));
                }
                // Mirrors Config::packed: m/k each, remainder onto bin 0.
                // rbb-lint: allow(lossy-cast, reason = "k <= n is checked above, and validate() bounds n by the u32 range")
                let per = m32 / *k as u32;
                // rbb-lint: allow(lossy-cast, reason = "k <= n is checked above, and validate() bounds n by the u32 range")
                let rem = m32 % *k as u32;
                let mut entries: Vec<(u32, u32)> = Vec::with_capacity(*k);
                // rbb-lint: allow(lossy-cast, reason = "k <= n is checked above, and validate() bounds n by the u32 range")
                for i in 0..*k as u32 {
                    let load = per + if i == 0 { rem } else { 0 };
                    if load > 0 {
                        entries.push((i, load));
                    }
                }
                Ok(entries)
            }
            StartSpec::Geometric => {
                // Mirrors Config::geometric_cascade: halve what's left per
                // bin (at least 1), unplaceable tail back onto bin 0.
                let mut entries: Vec<(u32, u32)> = Vec::new();
                let mut left = m32;
                // rbb-lint: allow(lossy-cast, reason = "validate() bounds n by the u32 bin-index range")
                for b in 0..n as u32 {
                    if left == 0 {
                        break;
                    }
                    let take = (left / 2).max(1);
                    entries.push((b, take));
                    left -= take;
                }
                if left > 0 {
                    entries[0].1 += left;
                }
                Ok(entries)
            }
            StartSpec::Random { salt } => {
                let mut rng = crate::seed::xor_salted_rng(seed, *salt);
                Ok(random_assignment_entries(&mut rng, n, m))
            }
            StartSpec::RandomMultinomial { salt } => {
                let mut rng = crate::seed::xor_salted_rng(seed, *salt);
                Ok(random_assignment_multinomial(&mut rng, n, m))
            }
        }
    }
}

/// Which load-process implementation serves the spec — see the module docs
/// ("Dense vs sparse engine") for the full contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineSpec {
    /// The dense `O(n)`-per-round engine.
    Dense,
    /// The sparse `O(#occupied)`-per-round engine (load-only cell only).
    Sparse,
    /// The sharded single-trial engine (load-only cell only): per-shard
    /// RNG streams, bit-identical for a fixed `shards` at any thread
    /// count, equal to the dense stream in law (bit-identical at
    /// `shards: 1`).
    Sharded,
    /// Pick per the density heuristic: sparse iff `SPARSE_AUTO_RATIO·balls
    /// ≤ n`, else sharded iff `n ≥ SHARDED_AUTO_MIN_N` (both only in the
    /// load-only cell). The default.
    #[default]
    Auto,
}

/// `auto` engine selection picks the sparse engine when
/// `SPARSE_AUTO_RATIO · balls ≤ n`. See the module docs for why 1/64.
pub const SPARSE_AUTO_RATIO: u64 = 64;

/// `auto` engine selection picks the sharded engine for dense load-only
/// cells with at least this many bins (a scale where the `O(n)` column
/// scans dominate a round and sharding can amortize). Deliberately far
/// above every committed spec and golden fixture that predates the sharded
/// engine, so `auto` resolutions — and therefore published trajectories —
/// are unchanged below it.
pub const SHARDED_AUTO_MIN_N: usize = 2_000_000;

/// Shard count used when `engine: "sharded"` (or an `auto` resolution to
/// it) does not set the `shards` field explicitly. A fixed constant — never
/// the machine's core count — because the shard count is part of the
/// reproducibility key.
pub const DEFAULT_SHARDS: usize = 4;

/// How a moving ball picks its destination (the rebalancing rule).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSpec {
    /// Uniform over bins / neighbors — the paper's process.
    Uniform,
    /// Least loaded of `d` uniform candidates (\[36\]; `d = 1` ≡ uniform).
    DChoice {
        /// Number of uniform candidates per re-assignment.
        d: usize,
    },
    /// The Section-3 Tetris majorant: `⌊(3/4)n⌋` fresh arrivals per round.
    Tetris,
    /// Leaky bins (\[18\]): `Binomial(n, λ)` fresh arrivals per round.
    BatchedTetris {
        /// Arrival rate λ ∈ [0, 1].
        lambda: f64,
    },
}

/// The queue-selection strategy, when ball identities matter.
///
/// Mirrors [`QueueStrategy`] at the spec layer (the core crate stays free
/// of serde).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategySpec {
    /// First in, first out.
    Fifo,
    /// Last in, first out.
    Lifo,
    /// Uniformly random enqueued ball.
    Random,
}

impl StrategySpec {
    /// The core-crate strategy this spec value names.
    pub fn to_core(self) -> QueueStrategy {
        match self {
            StrategySpec::Fifo => QueueStrategy::Fifo,
            StrategySpec::Lifo => QueueStrategy::Lifo,
            StrategySpec::Random => QueueStrategy::Random,
        }
    }

    /// Spec value for a core strategy.
    pub fn from_core(s: QueueStrategy) -> Self {
        match s {
            QueueStrategy::Fifo => StrategySpec::Fifo,
            QueueStrategy::Lifo => StrategySpec::Lifo,
            QueueStrategy::Random => StrategySpec::Random,
        }
    }
}

/// Per-ball weights — the weighted generalization of the unit-load model.
///
/// Weights are **metric-only**: they never change the dynamics or the RNG
/// stream (each non-empty bin still releases exactly one ball per round,
/// FIFO by arrival), so the unit configuration of every weighted engine is
/// bit-identical to the historical unit engine. Restricted to the load-only
/// uniform/complete cell — the only cell whose engines carry the weight
/// overlay.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightsSpec {
    /// Every ball weighs 1 — the paper's model, and the same engine as an
    /// omitted `weights` field.
    Unit,
    /// Power-law weights: ball `k` (in bin order over the start
    /// configuration) weighs `round(w_max / (k+1)^s)`, clamped to
    /// `[1, w_max]`. Deterministic — no RNG draw — so the engine stream is
    /// untouched. Larger `s` concentrates the mass on the first balls.
    Zipf {
        /// Skew exponent (finite, > 0).
        s: f64,
        /// Heaviest weight (`None` ≡ [`DEFAULT_ZIPF_W_MAX`]).
        w_max: Option<u32>,
    },
    /// One weight per ball, in bin order over the start configuration.
    /// Must have exactly `balls` entries, all ≥ 1.
    Explicit(Vec<u32>),
}

impl WeightsSpec {
    /// Lowers to the core weight model for `balls` balls.
    pub fn to_core(&self, balls: u64) -> Weights {
        match self {
            WeightsSpec::Unit => Weights::Unit,
            WeightsSpec::Zipf { s, w_max } => {
                Weights::zipf(balls, *s, w_max.unwrap_or(DEFAULT_ZIPF_W_MAX))
            }
            WeightsSpec::Explicit(ws) => Weights::Explicit(ws.clone()).normalized(),
        }
    }

    /// Whether this spec names the unit weighting (without materializing a
    /// weight vector): `unit`, zipf capped at `w_max: 1`, or an explicit
    /// all-ones vector.
    pub fn is_unit(&self) -> bool {
        match self {
            WeightsSpec::Unit => true,
            WeightsSpec::Zipf { w_max, .. } => w_max.unwrap_or(DEFAULT_ZIPF_W_MAX) == 1,
            WeightsSpec::Explicit(ws) => ws.iter().all(|&w| w == 1),
        }
    }
}

/// Per-bin capacity bounds — *observed* constraints, never dynamics: the
/// process runs exactly as without them while the engine counts how many
/// bins exceed their bound ([`Engine::capacity_violations`]). Restricted to
/// the load-only uniform/complete cell, like [`WeightsSpec`].
///
/// [`Engine::capacity_violations`]: rbb_core::engine::Engine::capacity_violations
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CapacitiesSpec {
    /// No bounds (the same engine as an omitted `capacities` field).
    Unbounded,
    /// Every bin bounded by the same weighted load `c ≥ 1`.
    Uniform {
        /// The shared bound.
        c: u64,
    },
    /// One bound per bin; must have exactly `n` entries, all ≥ 1.
    Explicit(Vec<u64>),
}

impl CapacitiesSpec {
    /// Lowers to the core capacity model.
    pub fn to_core(&self) -> Capacities {
        match self {
            CapacitiesSpec::Unbounded => Capacities::Unbounded,
            CapacitiesSpec::Uniform { c } => Capacities::Uniform(*c),
            CapacitiesSpec::Explicit(caps) => Capacities::Explicit(caps.clone()),
        }
    }

    /// Whether this spec names the trivial (unbounded) capacity model.
    pub fn is_unbounded(&self) -> bool {
        matches!(self, CapacitiesSpec::Unbounded)
    }
}

/// The graph the walk is constrained to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// Complete graph with self-loops — exactly the paper's process, served
    /// by the dedicated (fast) clique engines.
    Complete,
    /// The same complete-with-loops graph, but run through the generic
    /// graph-walk engine. Identical in *law* to [`Complete`][Self::Complete]
    /// while consuming the RNG through the neighbor sampler — use it when
    /// comparing topologies on equal sampling footing (experiment E13).
    CompleteGraph,
    /// Cycle.
    Ring,
    /// `side × side` torus with `side = round(√n)`.
    Torus,
    /// Hypercube of dimension `round(log₂ n)`.
    Hypercube,
    /// Random `degree`-regular graph drawn from `seed ^ salt`.
    RandomRegular {
        /// Vertex degree.
        degree: usize,
        /// XOR-salt applied to the scenario seed for the graph's stream.
        salt: u64,
    },
    /// Star — the non-regular control.
    Star,
}

impl TopologySpec {
    /// Whether this is the complete-with-loops topology (the paper's clique
    /// process, served by the dedicated engines).
    pub fn is_complete(&self) -> bool {
        matches!(self, TopologySpec::Complete)
    }

    /// Builds the graph at requested size `n` (rounded by the builder where
    /// the family demands it: torus to a square, hypercube to a power of 2).
    pub fn build(&self, n: usize, seed: u64) -> rbb_graphs::Graph {
        match self {
            TopologySpec::Complete | TopologySpec::CompleteGraph => {
                rbb_graphs::complete_with_loops(n)
            }
            TopologySpec::Ring => rbb_graphs::ring(n),
            TopologySpec::Torus => {
                let side = (n as f64).sqrt().round() as usize;
                rbb_graphs::torus(side, side)
            }
            // rbb-lint: allow(lossy-cast, reason = "log2(n) <= 64 for any representable n")
            TopologySpec::Hypercube => rbb_graphs::hypercube((n as f64).log2().round() as u32),
            TopologySpec::RandomRegular { degree, salt } => {
                let mut rng = crate::seed::xor_salted_rng(seed, *salt);
                rbb_graphs::random_regular(n, *degree, &mut rng)
            }
            TopologySpec::Star => rbb_graphs::star(n),
        }
    }
}

/// Which balls the adversary piles where in a faulty round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryKindSpec {
    /// Everything into bin 0.
    AllInOne,
    /// Evenly into the first `k` bins.
    Packed {
        /// Number of target bins.
        k: usize,
    },
    /// Everything onto the currently fullest bin.
    FollowTheLeader,
    /// Fresh uniform re-throw (the benign control).
    Random,
}

/// When faults fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleSpec {
    /// Every `γ·n` rounds (the paper's parameterization; γ ≥ 6 analyzed).
    Gamma {
        /// Period multiplier γ.
        gamma: u64,
    },
    /// Every `period` rounds.
    Period {
        /// Fault period in rounds (≥ 1).
        period: u64,
    },
}

/// The adversary arm of a scenario: who reassigns, and how often.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversarySpec {
    /// Reassignment rule.
    pub kind: AdversaryKindSpec,
    /// Fault clock.
    pub schedule: ScheduleSpec,
}

/// How long the scenario runs (an upper bound when a stop condition is set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HorizonSpec {
    /// A fixed number of rounds.
    Rounds {
        /// Round budget.
        rounds: u64,
    },
    /// `factor · n` rounds, scaled by the *engine's* bin count (after any
    /// topology rounding).
    FactorN {
        /// Multiplier on n.
        factor: u64,
    },
}

impl HorizonSpec {
    /// Resolves to a concrete round budget for engine size `n`.
    pub fn resolve(&self, n: usize) -> u64 {
        match self {
            HorizonSpec::Rounds { rounds } => *rounds,
            HorizonSpec::FactorN { factor } => factor * n as u64,
        }
    }
}

/// When the run ends before the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopSpec {
    /// Run the full horizon.
    Horizon,
    /// Stop at the first legitimate configuration (`M(q) ≤ 4 ln n`).
    Legitimate,
    /// Stop once every bin has been empty at least once (Lemma 4).
    AllEmptied,
    /// Stop once every token has visited every node (Corollary 1). Requires
    /// an engine with token identities (a `strategy`).
    Covered,
}

/// A complete, serializable scenario description. See the module docs for
/// the JSON schema and determinism contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Optional human-readable label (printed by `rbb sim`).
    pub name: Option<String>,
    /// Number of bins (nodes). Topology builders may round (torus, cube).
    pub n: usize,
    /// Number of balls (defaults to `n`).
    pub balls: Option<u64>,
    /// Per-ball weights (`None` ≡ unit). Metric-only — see [`WeightsSpec`].
    pub weights: Option<WeightsSpec>,
    /// Per-bin capacity bounds (`None` ≡ unbounded) — see
    /// [`CapacitiesSpec`].
    pub capacities: Option<CapacitiesSpec>,
    /// Initial configuration.
    pub start: StartSpec,
    /// Rebalancing rule.
    pub arrival: ArrivalSpec,
    /// Queue strategy; `None` runs the load-only engine.
    pub strategy: Option<StrategySpec>,
    /// Load-process implementation: `"dense"`, `"sparse"`, `"sharded"`, or
    /// `"auto"` (`None` ≡ auto). See the module docs for the density
    /// heuristic and the bit-identity guarantee.
    pub engine: Option<EngineSpec>,
    /// Shard count for the sharded engine (`None` ≡ [`DEFAULT_SHARDS`]).
    /// Part of the reproducibility key: trajectories are bit-identical for
    /// a fixed shard count, not across shard counts. Only valid together
    /// with `engine: "sharded"`.
    pub shards: Option<usize>,
    /// Topology; [`TopologySpec::Complete`] is the paper's process.
    pub topology: TopologySpec,
    /// Optional adversary arm.
    pub adversary: Option<AdversarySpec>,
    /// Round budget.
    pub horizon: HorizonSpec,
    /// Early-stop condition.
    pub stop: StopSpec,
    /// Master seed for this run (sweeps override per trial).
    pub seed: u64,
}

impl ScenarioSpec {
    /// A builder seeded with the paper's defaults: `n` balls in `n` bins,
    /// one per bin, uniform re-assignment on the clique, no strategy, no
    /// adversary, `100·n` rounds, horizon stop, seed 1.
    pub fn builder(n: usize) -> ScenarioSpecBuilder {
        ScenarioSpecBuilder {
            spec: ScenarioSpec {
                name: None,
                n,
                balls: None,
                weights: None,
                capacities: None,
                start: StartSpec::OnePerBin,
                arrival: ArrivalSpec::Uniform,
                strategy: None,
                engine: None,
                shards: None,
                topology: TopologySpec::Complete,
                adversary: None,
                horizon: HorizonSpec::FactorN { factor: 100 },
                stop: StopSpec::Horizon,
                seed: 1,
            },
        }
    }

    /// The ball count (defaults to `n`).
    pub fn balls_or_default(&self) -> u64 {
        self.balls.unwrap_or(self.n as u64)
    }

    /// Whether the spec lands in the load-only uniform/complete factory
    /// cell — the only cell with both a dense and a sparse implementation.
    pub fn is_load_only_cell(&self) -> bool {
        self.topology.is_complete()
            && self.strategy.is_none()
            && matches!(self.arrival, ArrivalSpec::Uniform)
    }

    /// The core weight model this spec runs with (`None` ≡ unit).
    pub fn core_weights(&self) -> Weights {
        self.weights
            .as_ref()
            .map_or(Weights::Unit, |w| w.to_core(self.balls_or_default()))
    }

    /// The core capacity model this spec runs with (`None` ≡ unbounded).
    pub fn core_capacities(&self) -> Capacities {
        self.capacities
            .as_ref()
            .map_or(Capacities::Unbounded, CapacitiesSpec::to_core)
    }

    /// Whether the spec carries non-trivial weighted state: non-unit
    /// weights or real capacity bounds. A `weights: unit` /
    /// `capacities: unbounded` spec is *not* weighted — it builds the same
    /// engine as omitting the fields, bit for bit.
    pub fn is_weighted(&self) -> bool {
        self.weights.as_ref().is_some_and(|w| !w.is_unit())
            || self.capacities.as_ref().is_some_and(|c| !c.is_unbounded())
    }

    /// Resolves the `engine` field to a concrete choice: explicit
    /// `dense`/`sparse`/`sharded` win; `auto` (and an omitted field) picks
    /// sparse iff the spec is in the load-only cell and
    /// [`SPARSE_AUTO_RATIO`]` · balls ≤ n`, then sharded iff the cell is
    /// load-only and `n ≥ `[`SHARDED_AUTO_MIN_N`], else dense. Dense and
    /// sparse are bit-identical, so choosing between them is purely a
    /// performance decision; the sharded pick keeps the law but changes the
    /// stream (see the module docs), and only fires above the committed
    /// fixtures' scale.
    pub fn resolved_engine(&self) -> EngineSpec {
        match self.engine.unwrap_or_default() {
            EngineSpec::Dense => EngineSpec::Dense,
            EngineSpec::Sparse => EngineSpec::Sparse,
            EngineSpec::Sharded => EngineSpec::Sharded,
            EngineSpec::Auto => {
                let sparse = self.is_load_only_cell()
                    && self
                        .balls_or_default()
                        .checked_mul(SPARSE_AUTO_RATIO)
                        .is_some_and(|scaled| scaled <= self.n as u64);
                if sparse {
                    EngineSpec::Sparse
                } else if self.is_load_only_cell()
                    && self.n >= SHARDED_AUTO_MIN_N
                    && !self.is_weighted()
                {
                    // Weighted mass never auto-selects sharded: the sharded
                    // weighted round is law-equal but stream-different from
                    // dense (it always consumes batched draws), so the
                    // upgrade must be an explicit `engine: "sharded"` opt-in
                    // rather than a silent heuristic flip. Dense and sparse
                    // stay bit-identical under weights, so the sparse pick
                    // above remains safe.
                    EngineSpec::Sharded
                } else {
                    EngineSpec::Dense
                }
            }
        }
    }

    /// The shard count a sharded resolution runs with: the explicit
    /// `shards` field, else [`DEFAULT_SHARDS`] capped at `n` (so tiny
    /// explicit-sharded specs stay valid). Meaningless — and rejected by
    /// [`validate`](Self::validate) — unless the engine is sharded.
    pub fn resolved_shards(&self) -> usize {
        self.shards.unwrap_or(DEFAULT_SHARDS).min(self.n)
    }

    /// Returns a copy with the seed replaced — the sweep entry point (one
    /// spec, many trial seeds).
    pub fn with_seed(&self, seed: u64) -> Self {
        Self {
            seed,
            ..self.clone()
        }
    }

    /// Checks the spec for structural and cross-field validity without
    /// constructing an engine. [`scenario`](ScenarioSpec::scenario) calls
    /// this first, so factory users get the same diagnostics.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.n < 2 {
            return Err(SpecError("n must be at least 2".into()));
        }
        if self.n > u32::MAX as usize + 1 {
            // Bin indices are u32 throughout the workspace; a larger n
            // would silently truncate destination draws in release builds.
            return Err(SpecError(format!(
                "n = {} exceeds the u32 bin-index range",
                self.n
            )));
        }
        let m = self.balls_or_default();
        if m == 0 {
            return Err(SpecError("balls must be positive".into()));
        }
        if u32::try_from(m).is_err() {
            return Err(SpecError("balls must fit in u32".into()));
        }
        if self.weights.is_some() || self.capacities.is_some() {
            if !self.is_load_only_cell() {
                // Strict like `shards`: a weights/capacities field outside
                // the only cell that implements them is a typo'd intent.
                return Err(SpecError(
                    "weights/capacities apply to the load-only uniform process on the \
                     complete topology; remove `strategy`/`topology`/`arrival` overrides"
                        .into(),
                ));
            }
            if self.is_weighted() && self.adversary.is_some() {
                return Err(SpecError(
                    "weighted scenarios do not support adversaries yet".into(),
                ));
            }
            if let Some(WeightsSpec::Zipf { s, w_max }) = &self.weights {
                if !s.is_finite() || *s <= 0.0 {
                    return Err(SpecError(format!(
                        "zipf weights need a finite skew s > 0 (got {s})"
                    )));
                }
                if w_max == &Some(0) {
                    return Err(SpecError("zipf weights need w_max >= 1".into()));
                }
            }
            if let Some(WeightsSpec::Explicit(ws)) = &self.weights {
                // Validate the raw vector: `to_core` collapses all-ones to
                // the unit model, which would mask an arity mismatch.
                Weights::Explicit(ws.clone())
                    .validate(m)
                    .map_err(|e| SpecError(format!("invalid weights: {e}")))?;
            }
            self.core_capacities()
                .validate(self.n)
                .map_err(|e| SpecError(format!("invalid capacities: {e}")))?;
        }
        if matches!(self.start, StartSpec::OnePerBin) && m != self.n as u64 {
            return Err(SpecError(format!(
                "start one-per-bin requires balls == n (got {m} balls, {} bins); \
                 omit `balls` to default it",
                self.n
            )));
        }
        if self.horizon.resolve(self.n) == 0 {
            return Err(SpecError("horizon must be positive".into()));
        }
        if self.engine == Some(EngineSpec::Sparse) && !self.is_load_only_cell() {
            return Err(SpecError(
                "the sparse engine serves the load-only uniform process on the complete \
                 topology; remove `strategy`/`topology`/`arrival` overrides or set \
                 engine to \"dense\" or \"auto\""
                    .into(),
            ));
        }
        if self.engine == Some(EngineSpec::Sharded) && !self.is_load_only_cell() {
            return Err(SpecError(
                "the sharded engine serves the load-only uniform process on the complete \
                 topology; remove `strategy`/`topology`/`arrival` overrides or set \
                 engine to \"dense\" or \"auto\""
                    .into(),
            ));
        }
        if let Some(shards) = self.shards {
            if self.engine != Some(EngineSpec::Sharded) {
                // Strict: a shards field on a non-sharded spec is a typo'd
                // intent, not a harmless default.
                return Err(SpecError(
                    "`shards` only applies to engine \"sharded\"; set engine: \"sharded\" \
                     or remove the field"
                        .into(),
                ));
            }
            if shards < 1 || shards > self.n {
                return Err(SpecError(format!(
                    "shards = {shards} out of range 1..={} (need 1 <= shards <= n)",
                    self.n
                )));
            }
        }
        if let StartSpec::Packed { k } = self.start {
            if k < 1 || k > self.n {
                return Err(SpecError(format!(
                    "packed start k = {k} out of range 1..={}",
                    self.n
                )));
            }
        }
        match self.arrival {
            ArrivalSpec::DChoice { d } => {
                if d < 1 {
                    return Err(SpecError("d-choice needs d >= 1".into()));
                }
                if self.strategy.is_some() {
                    return Err(SpecError(
                        "d-choice is a load-only engine; remove `strategy`".into(),
                    ));
                }
                if !self.topology.is_complete() {
                    return Err(SpecError("d-choice runs on the complete topology".into()));
                }
            }
            ArrivalSpec::Tetris | ArrivalSpec::BatchedTetris { .. } => {
                if self.strategy.is_some() {
                    return Err(SpecError(
                        "Tetris engines are load-only; remove `strategy`".into(),
                    ));
                }
                if !self.topology.is_complete() {
                    return Err(SpecError("Tetris runs on the complete topology".into()));
                }
                if self.adversary.is_some() {
                    return Err(SpecError(
                        "Tetris does not conserve balls, so adversarial reassignment is undefined"
                            .into(),
                    ));
                }
                if let ArrivalSpec::BatchedTetris { lambda } = self.arrival {
                    if !(0.0..=1.0).contains(&lambda) {
                        return Err(SpecError(format!("lambda = {lambda} outside [0, 1]")));
                    }
                }
            }
            ArrivalSpec::Uniform => {}
        }
        if !self.topology.is_complete() {
            if self.strategy.is_some() && !matches!(self.start, StartSpec::OnePerBin) {
                return Err(SpecError(
                    "graph token walks start one-per-node; use start one-per-bin".into(),
                ));
            }
            // Builder preconditions, surfaced as spec diagnostics instead of
            // panics inside the graph constructors.
            match self.topology {
                TopologySpec::Ring if self.n < 3 => {
                    return Err(SpecError("ring needs n >= 3".into()))
                }
                TopologySpec::Torus if ((self.n as f64).sqrt().round() as usize) < 3 => {
                    return Err(SpecError("torus needs n >= 7 (side >= 3)".into()))
                }
                TopologySpec::RandomRegular { degree, .. } => {
                    if degree < 1 || degree >= self.n {
                        return Err(SpecError(format!(
                            "regular topology needs 1 <= degree < n (degree {degree}, n {})",
                            self.n
                        )));
                    }
                    if self.n * degree % 2 != 0 {
                        return Err(SpecError(format!(
                            "regular topology needs n·degree even (n {}, degree {degree})",
                            self.n
                        )));
                    }
                }
                _ => {}
            }
        }
        if self.stop == StopSpec::Covered && self.strategy.is_none() {
            return Err(SpecError(
                "the covered stop needs token identities; set a `strategy`".into(),
            ));
        }
        if let Some(adv) = &self.adversary {
            match adv.schedule {
                ScheduleSpec::Gamma { gamma: 0 } => {
                    return Err(SpecError("gamma must be >= 1".into()))
                }
                ScheduleSpec::Period { period: 0 } => {
                    return Err(SpecError("fault period must be >= 1".into()))
                }
                _ => {}
            }
            if let AdversaryKindSpec::Packed { k } = adv.kind {
                if k == 0 {
                    return Err(SpecError("packed adversary needs k >= 1".into()));
                }
            }
        }
        Ok(())
    }
}

/// Fluent construction of a [`ScenarioSpec`]; see
/// [`ScenarioSpec::builder`] for the defaults.
#[derive(Debug, Clone)]
pub struct ScenarioSpecBuilder {
    spec: ScenarioSpec,
}

impl ScenarioSpecBuilder {
    /// Sets the display name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.spec.name = Some(name.into());
        self
    }

    /// Sets the ball count (default: `n`).
    pub fn balls(mut self, m: u64) -> Self {
        self.spec.balls = Some(m);
        self
    }

    /// Sets the per-ball weights (default: unit).
    pub fn weights(mut self, w: WeightsSpec) -> Self {
        self.spec.weights = Some(w);
        self
    }

    /// Sets the per-bin capacity bounds (default: unbounded).
    pub fn capacities(mut self, c: CapacitiesSpec) -> Self {
        self.spec.capacities = Some(c);
        self
    }

    /// Sets the initial configuration.
    pub fn start(mut self, start: StartSpec) -> Self {
        self.spec.start = start;
        self
    }

    /// Sets the arrival model.
    pub fn arrival(mut self, arrival: ArrivalSpec) -> Self {
        self.spec.arrival = arrival;
        self
    }

    /// Sets the queue strategy (ball-identity engines).
    pub fn strategy(mut self, s: StrategySpec) -> Self {
        self.spec.strategy = Some(s);
        self
    }

    /// Sets the load-process implementation (default: auto).
    pub fn engine(mut self, e: EngineSpec) -> Self {
        self.spec.engine = Some(e);
        self
    }

    /// Sets the shard count for the sharded engine (default:
    /// [`DEFAULT_SHARDS`]). Only valid together with
    /// [`engine`](Self::engine)`(EngineSpec::Sharded)`.
    pub fn shards(mut self, shards: usize) -> Self {
        self.spec.shards = Some(shards);
        self
    }

    /// Sets the topology.
    pub fn topology(mut self, t: TopologySpec) -> Self {
        self.spec.topology = t;
        self
    }

    /// Sets the adversary arm.
    pub fn adversary(mut self, kind: AdversaryKindSpec, schedule: ScheduleSpec) -> Self {
        self.spec.adversary = Some(AdversarySpec { kind, schedule });
        self
    }

    /// Sets a fixed-round horizon.
    pub fn horizon_rounds(mut self, rounds: u64) -> Self {
        self.spec.horizon = HorizonSpec::Rounds { rounds };
        self
    }

    /// Sets a `factor·n` horizon.
    pub fn horizon_factor(mut self, factor: u64) -> Self {
        self.spec.horizon = HorizonSpec::FactorN { factor };
        self
    }

    /// Sets the stop condition.
    pub fn stop(mut self, stop: StopSpec) -> Self {
        self.spec.stop = stop;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Finishes the build (unvalidated; `scenario()` validates).
    pub fn build(self) -> ScenarioSpec {
        self.spec
    }
}

// ---------------------------------------------------------------------------
// Serde: enums lower to `{"kind": "...", ...params}` objects (param-less
// spec enums to plain strings) against the vendored serde stub's Value
// model. Hand-written because the stub's derive covers structs only.
// ---------------------------------------------------------------------------

fn kind_obj(kind: &str, params: Vec<(&str, Value)>) -> Value {
    let mut entries = vec![("kind".to_string(), Value::Str(kind.to_string()))];
    entries.extend(params.into_iter().map(|(k, v)| (k.to_string(), v)));
    Value::Object(entries)
}

fn read_kind(value: &Value, what: &str) -> Result<String, DeError> {
    let kind = value
        .get("kind")
        .ok_or_else(|| DeError::expected(&format!("{what} object"), value))?;
    kind.as_str()
        .map(str::to_string)
        .ok_or_else(|| DeError::expected("string `kind`", kind))
}

fn read_param<T: Deserialize>(value: &Value, key: &str) -> Result<T, DeError> {
    T::deserialize(serde::field(value, key)?).map_err(|e| e.in_field(key))
}

impl Serialize for StartSpec {
    fn serialize(&self) -> Value {
        match self {
            StartSpec::OnePerBin => kind_obj("one-per-bin", vec![]),
            StartSpec::AllInOne => kind_obj("all-in-one", vec![]),
            StartSpec::Packed { k } => kind_obj("packed", vec![("k", k.serialize())]),
            StartSpec::Geometric => kind_obj("geometric", vec![]),
            StartSpec::Random { salt } => kind_obj("random", vec![("salt", salt.serialize())]),
            StartSpec::RandomMultinomial { salt } => {
                kind_obj("random-multinomial", vec![("salt", salt.serialize())])
            }
        }
    }
}

impl Deserialize for StartSpec {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match read_kind(value, "start")?.as_str() {
            "one-per-bin" => Ok(StartSpec::OnePerBin),
            "all-in-one" => Ok(StartSpec::AllInOne),
            "packed" => Ok(StartSpec::Packed {
                k: read_param(value, "k")?,
            }),
            "geometric" => Ok(StartSpec::Geometric),
            "random" => Ok(StartSpec::Random {
                salt: read_param(value, "salt")?,
            }),
            "random-multinomial" => Ok(StartSpec::RandomMultinomial {
                salt: read_param(value, "salt")?,
            }),
            other => Err(DeError(format!("unknown start kind '{other}'"))),
        }
    }
}

impl Serialize for EngineSpec {
    fn serialize(&self) -> Value {
        Value::Str(
            match self {
                EngineSpec::Dense => "dense",
                EngineSpec::Sparse => "sparse",
                EngineSpec::Sharded => "sharded",
                EngineSpec::Auto => "auto",
            }
            .to_string(),
        )
    }
}

impl Deserialize for EngineSpec {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value.as_str() {
            Some("dense") => Ok(EngineSpec::Dense),
            Some("sparse") => Ok(EngineSpec::Sparse),
            Some("sharded") => Ok(EngineSpec::Sharded),
            Some("auto") => Ok(EngineSpec::Auto),
            Some(other) => Err(DeError(format!("unknown engine '{other}'"))),
            None => Err(DeError::expected("engine string", value)),
        }
    }
}

impl Serialize for ArrivalSpec {
    fn serialize(&self) -> Value {
        match self {
            ArrivalSpec::Uniform => kind_obj("uniform", vec![]),
            ArrivalSpec::DChoice { d } => kind_obj("d-choice", vec![("d", d.serialize())]),
            ArrivalSpec::Tetris => kind_obj("tetris", vec![]),
            ArrivalSpec::BatchedTetris { lambda } => {
                kind_obj("batched-tetris", vec![("lambda", lambda.serialize())])
            }
        }
    }
}

impl Deserialize for ArrivalSpec {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match read_kind(value, "arrival")?.as_str() {
            "uniform" => Ok(ArrivalSpec::Uniform),
            "d-choice" => Ok(ArrivalSpec::DChoice {
                d: read_param(value, "d")?,
            }),
            "tetris" => Ok(ArrivalSpec::Tetris),
            "batched-tetris" => Ok(ArrivalSpec::BatchedTetris {
                lambda: read_param(value, "lambda")?,
            }),
            other => Err(DeError(format!("unknown arrival kind '{other}'"))),
        }
    }
}

impl Serialize for StrategySpec {
    fn serialize(&self) -> Value {
        Value::Str(
            match self {
                StrategySpec::Fifo => "fifo",
                StrategySpec::Lifo => "lifo",
                StrategySpec::Random => "random",
            }
            .to_string(),
        )
    }
}

impl Deserialize for StrategySpec {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value.as_str() {
            Some("fifo") => Ok(StrategySpec::Fifo),
            Some("lifo") => Ok(StrategySpec::Lifo),
            Some("random") => Ok(StrategySpec::Random),
            Some(other) => Err(DeError(format!("unknown strategy '{other}'"))),
            None => Err(DeError::expected("strategy string", value)),
        }
    }
}

impl Serialize for WeightsSpec {
    fn serialize(&self) -> Value {
        match self {
            WeightsSpec::Unit => kind_obj("unit", vec![]),
            WeightsSpec::Zipf { s, w_max } => kind_obj(
                "zipf",
                vec![("s", s.serialize()), ("w_max", w_max.serialize())],
            ),
            WeightsSpec::Explicit(ws) => kind_obj("explicit", vec![("weights", ws.serialize())]),
        }
    }
}

impl Deserialize for WeightsSpec {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match read_kind(value, "weights")?.as_str() {
            "unit" => Ok(WeightsSpec::Unit),
            "zipf" => Ok(WeightsSpec::Zipf {
                s: read_param(value, "s")?,
                w_max: read_param(value, "w_max")?,
            }),
            "explicit" => Ok(WeightsSpec::Explicit(read_param(value, "weights")?)),
            other => Err(DeError(format!("unknown weights kind '{other}'"))),
        }
    }
}

impl Serialize for CapacitiesSpec {
    fn serialize(&self) -> Value {
        match self {
            CapacitiesSpec::Unbounded => kind_obj("unbounded", vec![]),
            CapacitiesSpec::Uniform { c } => kind_obj("uniform", vec![("c", c.serialize())]),
            CapacitiesSpec::Explicit(caps) => {
                kind_obj("explicit", vec![("caps", caps.serialize())])
            }
        }
    }
}

impl Deserialize for CapacitiesSpec {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match read_kind(value, "capacities")?.as_str() {
            "unbounded" => Ok(CapacitiesSpec::Unbounded),
            "uniform" => Ok(CapacitiesSpec::Uniform {
                c: read_param(value, "c")?,
            }),
            "explicit" => Ok(CapacitiesSpec::Explicit(read_param(value, "caps")?)),
            other => Err(DeError(format!("unknown capacities kind '{other}'"))),
        }
    }
}

impl Serialize for TopologySpec {
    fn serialize(&self) -> Value {
        match self {
            TopologySpec::Complete => kind_obj("complete", vec![]),
            TopologySpec::CompleteGraph => kind_obj("complete-graph", vec![]),
            TopologySpec::Ring => kind_obj("ring", vec![]),
            TopologySpec::Torus => kind_obj("torus", vec![]),
            TopologySpec::Hypercube => kind_obj("hypercube", vec![]),
            TopologySpec::RandomRegular { degree, salt } => kind_obj(
                "random-regular",
                vec![("degree", degree.serialize()), ("salt", salt.serialize())],
            ),
            TopologySpec::Star => kind_obj("star", vec![]),
        }
    }
}

impl Deserialize for TopologySpec {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match read_kind(value, "topology")?.as_str() {
            "complete" => Ok(TopologySpec::Complete),
            "complete-graph" => Ok(TopologySpec::CompleteGraph),
            "ring" => Ok(TopologySpec::Ring),
            "torus" => Ok(TopologySpec::Torus),
            "hypercube" => Ok(TopologySpec::Hypercube),
            "random-regular" => Ok(TopologySpec::RandomRegular {
                degree: read_param(value, "degree")?,
                salt: read_param(value, "salt")?,
            }),
            "star" => Ok(TopologySpec::Star),
            other => Err(DeError(format!("unknown topology kind '{other}'"))),
        }
    }
}

impl Serialize for AdversarySpec {
    fn serialize(&self) -> Value {
        let mut params = Vec::new();
        let kind = match self.kind {
            AdversaryKindSpec::AllInOne => "all-in-one",
            AdversaryKindSpec::Packed { k } => {
                params.push(("k", k.serialize()));
                "packed"
            }
            AdversaryKindSpec::FollowTheLeader => "follow-the-leader",
            AdversaryKindSpec::Random => "random",
        };
        match self.schedule {
            ScheduleSpec::Gamma { gamma } => params.push(("gamma", gamma.serialize())),
            ScheduleSpec::Period { period } => params.push(("period", period.serialize())),
        }
        kind_obj(kind, params)
    }
}

impl Deserialize for AdversarySpec {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let kind = match read_kind(value, "adversary")?.as_str() {
            "all-in-one" => AdversaryKindSpec::AllInOne,
            "packed" => AdversaryKindSpec::Packed {
                k: read_param(value, "k")?,
            },
            "follow-the-leader" => AdversaryKindSpec::FollowTheLeader,
            "random" => AdversaryKindSpec::Random,
            other => return Err(DeError(format!("unknown adversary kind '{other}'"))),
        };
        let gamma: Option<u64> = read_param(value, "gamma")?;
        let period: Option<u64> = read_param(value, "period")?;
        let schedule = match (gamma, period) {
            (Some(gamma), None) => ScheduleSpec::Gamma { gamma },
            (None, Some(period)) => ScheduleSpec::Period { period },
            _ => {
                return Err(DeError(
                    "adversary needs exactly one of `gamma` or `period`".to_string(),
                ))
            }
        };
        Ok(AdversarySpec { kind, schedule })
    }
}

impl Serialize for HorizonSpec {
    fn serialize(&self) -> Value {
        match self {
            HorizonSpec::Rounds { rounds } => {
                kind_obj("rounds", vec![("rounds", rounds.serialize())])
            }
            HorizonSpec::FactorN { factor } => {
                kind_obj("factor-n", vec![("factor", factor.serialize())])
            }
        }
    }
}

impl Deserialize for HorizonSpec {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match read_kind(value, "horizon")?.as_str() {
            "rounds" => Ok(HorizonSpec::Rounds {
                rounds: read_param(value, "rounds")?,
            }),
            "factor-n" => Ok(HorizonSpec::FactorN {
                factor: read_param(value, "factor")?,
            }),
            other => Err(DeError(format!("unknown horizon kind '{other}'"))),
        }
    }
}

impl Serialize for StopSpec {
    fn serialize(&self) -> Value {
        Value::Str(
            match self {
                StopSpec::Horizon => "horizon",
                StopSpec::Legitimate => "legitimate",
                StopSpec::AllEmptied => "all-emptied",
                StopSpec::Covered => "covered",
            }
            .to_string(),
        )
    }
}

impl Deserialize for StopSpec {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value.as_str() {
            Some("horizon") => Ok(StopSpec::Horizon),
            Some("legitimate") => Ok(StopSpec::Legitimate),
            Some("all-emptied") => Ok(StopSpec::AllEmptied),
            Some("covered") => Ok(StopSpec::Covered),
            Some(other) => Err(DeError(format!("unknown stop '{other}'"))),
            None => Err(DeError::expected("stop string", value)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbb_core::rng::Xoshiro256pp;
    use rbb_core::sampling::random_assignment;

    fn full_spec() -> ScenarioSpec {
        ScenarioSpec::builder(256)
            .name("kitchen-sink")
            .balls(256)
            .start(StartSpec::Random { salt: 0xFEED })
            .strategy(StrategySpec::Lifo)
            .topology(TopologySpec::Complete)
            .adversary(
                AdversaryKindSpec::Packed { k: 3 },
                ScheduleSpec::Gamma { gamma: 6 },
            )
            .horizon_rounds(5_000)
            .stop(StopSpec::Covered)
            .seed(42)
            .build()
    }

    #[test]
    fn builder_defaults_are_the_paper_process() {
        let spec = ScenarioSpec::builder(128).build();
        assert_eq!(spec.n, 128);
        assert_eq!(spec.balls_or_default(), 128);
        assert_eq!(spec.start, StartSpec::OnePerBin);
        assert_eq!(spec.arrival, ArrivalSpec::Uniform);
        assert_eq!(spec.strategy, None);
        assert_eq!(spec.topology, TopologySpec::Complete);
        assert_eq!(spec.horizon.resolve(spec.n), 12_800);
        assert_eq!(spec.stop, StopSpec::Horizon);
        spec.validate().unwrap();
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let spec = full_spec();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn minimal_json_with_nulls_parses() {
        let json = r#"{
            "name": null, "n": 64, "balls": null,
            "start": {"kind": "one-per-bin"},
            "arrival": {"kind": "uniform"},
            "strategy": null,
            "topology": {"kind": "complete"},
            "adversary": null,
            "horizon": {"kind": "factor-n", "factor": 10},
            "stop": "horizon",
            "seed": 7
        }"#;
        let spec: ScenarioSpec = serde_json::from_str(json).unwrap();
        assert_eq!(
            spec,
            ScenarioSpec::builder(64).horizon_factor(10).seed(7).build()
        );
        // Omitting the optional keys entirely is equivalent to null.
        let json_sparse = r#"{
            "n": 64,
            "start": {"kind": "one-per-bin"},
            "arrival": {"kind": "uniform"},
            "topology": {"kind": "complete"},
            "horizon": {"kind": "factor-n", "factor": 10},
            "stop": "horizon",
            "seed": 7
        }"#;
        let sparse: ScenarioSpec = serde_json::from_str(json_sparse).unwrap();
        assert_eq!(sparse, spec);
    }

    #[test]
    fn bad_json_reports_field() {
        let json = r#"{
            "n": 64,
            "start": {"kind": "sideways"},
            "arrival": {"kind": "uniform"},
            "topology": {"kind": "complete"},
            "horizon": {"kind": "rounds", "rounds": 10},
            "stop": "horizon",
            "seed": 1
        }"#;
        let err = serde_json::from_str::<ScenarioSpec>(json).unwrap_err();
        assert!(err.to_string().contains("start"), "{err}");
    }

    #[test]
    fn validation_catches_cross_field_conflicts() {
        let bad = [
            ScenarioSpec::builder(1).build(),
            ScenarioSpec::builder(u32::MAX as usize + 2)
                .balls(100)
                .start(StartSpec::AllInOne)
                .build(),
            ScenarioSpec::builder(64).balls(0).build(),
            ScenarioSpec::builder(64).horizon_rounds(0).build(),
            ScenarioSpec::builder(64)
                .arrival(ArrivalSpec::DChoice { d: 0 })
                .build(),
            ScenarioSpec::builder(64)
                .arrival(ArrivalSpec::DChoice { d: 2 })
                .strategy(StrategySpec::Fifo)
                .build(),
            ScenarioSpec::builder(64)
                .arrival(ArrivalSpec::Tetris)
                .topology(TopologySpec::Ring)
                .build(),
            ScenarioSpec::builder(64)
                .arrival(ArrivalSpec::BatchedTetris { lambda: 1.5 })
                .build(),
            ScenarioSpec::builder(64)
                .arrival(ArrivalSpec::Tetris)
                .adversary(
                    AdversaryKindSpec::AllInOne,
                    ScheduleSpec::Gamma { gamma: 6 },
                )
                .build(),
            ScenarioSpec::builder(64).stop(StopSpec::Covered).build(),
            ScenarioSpec::builder(64)
                .strategy(StrategySpec::Fifo)
                .adversary(
                    AdversaryKindSpec::AllInOne,
                    ScheduleSpec::Period { period: 0 },
                )
                .build(),
            ScenarioSpec::builder(64)
                .start(StartSpec::Packed { k: 100 })
                .build(),
            ScenarioSpec::builder(64)
                .topology(TopologySpec::Ring)
                .strategy(StrategySpec::Fifo)
                .start(StartSpec::AllInOne)
                .build(),
        ];
        for spec in bad {
            assert!(spec.validate().is_err(), "accepted: {spec:?}");
        }
    }

    #[test]
    fn start_builders_match_config_constructors() {
        let n = 16;
        assert_eq!(
            StartSpec::OnePerBin.build(n, 16, 1).unwrap(),
            Config::one_per_bin(n)
        );
        assert_eq!(
            StartSpec::AllInOne.build(n, 20, 1).unwrap(),
            Config::all_in_one(n, 20)
        );
        assert_eq!(
            StartSpec::Packed { k: 4 }.build(n, 20, 1).unwrap(),
            Config::packed(n, 20, 4)
        );
        assert_eq!(
            StartSpec::Geometric.build(n, 16, 1).unwrap(),
            Config::geometric_cascade(n, 16)
        );
        // Random start derives from seed ^ salt — the e05 convention.
        let mut rng = Xoshiro256pp::seed_from(9 ^ 0xFEED);
        let expect = Config::from_loads(random_assignment(&mut rng, n, 16));
        assert_eq!(
            StartSpec::Random { salt: 0xFEED }.build(n, 16, 9).unwrap(),
            expect
        );
        assert!(StartSpec::OnePerBin.build(n, 15, 1).is_err());
    }

    #[test]
    fn build_entries_densify_to_build_for_every_start() {
        // The sparse start builders must produce exactly the configuration
        // the dense builders do — same loads, and for `random` the same
        // seed ^ salt draw stream.
        let n = 40;
        let cases = [
            (StartSpec::OnePerBin, 40u64),
            (StartSpec::AllInOne, 23),
            (StartSpec::Packed { k: 7 }, 23),
            (StartSpec::Geometric, 23),
            (StartSpec::Random { salt: 0xFEED }, 23),
            (StartSpec::RandomMultinomial { salt: 0xFEED }, 23),
            (StartSpec::Geometric, 1),
            (StartSpec::Packed { k: 40 }, 3),
        ];
        for (start, m) in cases {
            let dense = start.build(n, m, 9).unwrap();
            let entries = start.build_entries(n, m, 9).unwrap();
            let mut rebuilt = vec![0u32; n];
            for (b, l) in entries {
                assert!(l > 0, "{start:?}: zero entry");
                assert_eq!(rebuilt[b as usize], 0, "{start:?}: duplicate bin {b}");
                rebuilt[b as usize] = l;
            }
            assert_eq!(rebuilt, dense.loads(), "{start:?} with m = {m}");
        }
    }

    #[test]
    fn engine_field_round_trips_and_defaults_to_auto() {
        let spec = ScenarioSpec::builder(6400)
            .balls(10)
            .start(StartSpec::AllInOne)
            .engine(EngineSpec::Sparse)
            .build();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        assert!(json.contains("\"engine\": \"sparse\""));
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        // Omitted field parses as None and resolves via the heuristic.
        let default = ScenarioSpec::builder(64).build();
        assert_eq!(default.engine, None);
        assert!(serde_json::to_string_pretty(&default)
            .unwrap()
            .contains("\"engine\": null"));
    }

    #[test]
    fn auto_heuristic_picks_sparse_only_when_sparse_enough() {
        // Density 1 (the paper's m = n): dense.
        assert_eq!(
            ScenarioSpec::builder(1024).build().resolved_engine(),
            EngineSpec::Dense
        );
        // 64·m == n: sparse (boundary inclusive).
        assert_eq!(
            ScenarioSpec::builder(1024)
                .balls(16)
                .start(StartSpec::AllInOne)
                .build()
                .resolved_engine(),
            EngineSpec::Sparse
        );
        // Just above the boundary: dense.
        assert_eq!(
            ScenarioSpec::builder(1024)
                .balls(17)
                .start(StartSpec::AllInOne)
                .build()
                .resolved_engine(),
            EngineSpec::Dense
        );
        // Sparse density but outside the load-only cell: dense.
        assert_eq!(
            ScenarioSpec::builder(2048)
                .balls(8)
                .start(StartSpec::AllInOne)
                .arrival(ArrivalSpec::DChoice { d: 2 })
                .build()
                .resolved_engine(),
            EngineSpec::Dense
        );
        // Explicit choices always win.
        assert_eq!(
            ScenarioSpec::builder(1024)
                .engine(EngineSpec::Sparse)
                .build()
                .resolved_engine(),
            EngineSpec::Sparse
        );
        assert_eq!(
            ScenarioSpec::builder(1 << 20)
                .balls(1)
                .start(StartSpec::AllInOne)
                .engine(EngineSpec::Dense)
                .build()
                .resolved_engine(),
            EngineSpec::Dense
        );
    }

    #[test]
    fn sharded_engine_round_trips_with_shards_field() {
        let spec = ScenarioSpec::builder(4096)
            .engine(EngineSpec::Sharded)
            .shards(4)
            .build();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        assert!(json.contains("\"engine\": \"sharded\""));
        assert!(json.contains("\"shards\": 4"));
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        spec.validate().unwrap();
        assert_eq!(spec.resolved_engine(), EngineSpec::Sharded);
        assert_eq!(spec.resolved_shards(), 4);
        // Omitted shards field: the fixed default, capped at n.
        let default = ScenarioSpec::builder(4096)
            .engine(EngineSpec::Sharded)
            .build();
        default.validate().unwrap();
        assert_eq!(default.resolved_shards(), DEFAULT_SHARDS);
        let tiny = ScenarioSpec::builder(2).engine(EngineSpec::Sharded).build();
        tiny.validate().unwrap();
        assert_eq!(tiny.resolved_shards(), 2);
    }

    #[test]
    fn auto_heuristic_picks_sharded_only_at_large_dense_n() {
        // Large dense load-only cell: sharded (boundary inclusive).
        let big = ScenarioSpec::builder(SHARDED_AUTO_MIN_N).build();
        assert_eq!(big.resolved_engine(), EngineSpec::Sharded);
        assert_eq!(big.resolved_shards(), DEFAULT_SHARDS);
        // Just below the boundary: dense.
        assert_eq!(
            ScenarioSpec::builder(SHARDED_AUTO_MIN_N - 1)
                .build()
                .resolved_engine(),
            EngineSpec::Dense
        );
        // Sparse wins over sharded when both heuristics fire.
        assert_eq!(
            ScenarioSpec::builder(SHARDED_AUTO_MIN_N)
                .balls(100)
                .start(StartSpec::AllInOne)
                .build()
                .resolved_engine(),
            EngineSpec::Sparse
        );
        // Large n outside the load-only cell: dense.
        assert_eq!(
            ScenarioSpec::builder(SHARDED_AUTO_MIN_N)
                .arrival(ArrivalSpec::DChoice { d: 2 })
                .build()
                .resolved_engine(),
            EngineSpec::Dense
        );
        // Explicit dense wins at any n.
        assert_eq!(
            ScenarioSpec::builder(SHARDED_AUTO_MIN_N)
                .engine(EngineSpec::Dense)
                .build()
                .resolved_engine(),
            EngineSpec::Dense
        );
    }

    #[test]
    fn sharded_engine_rejected_outside_load_only_cell() {
        let bad = [
            ScenarioSpec::builder(64)
                .engine(EngineSpec::Sharded)
                .strategy(StrategySpec::Fifo)
                .build(),
            ScenarioSpec::builder(64)
                .engine(EngineSpec::Sharded)
                .topology(TopologySpec::Ring)
                .build(),
            ScenarioSpec::builder(64)
                .engine(EngineSpec::Sharded)
                .arrival(ArrivalSpec::Tetris)
                .build(),
        ];
        for spec in bad {
            let err = spec.validate().unwrap_err();
            assert!(err.0.contains("sharded engine"), "{err}");
        }
    }

    #[test]
    fn shards_field_validation() {
        // shards without engine: "sharded" is rejected, even harmless ones.
        for engine in [None, Some(EngineSpec::Dense), Some(EngineSpec::Auto)] {
            let mut spec = ScenarioSpec::builder(64).shards(4).build();
            spec.engine = engine;
            let err = spec.validate().unwrap_err();
            assert!(err.0.contains("shards"), "{err}");
        }
        // Out-of-range shard counts are rejected.
        for shards in [0usize, 65] {
            let err = ScenarioSpec::builder(64)
                .engine(EngineSpec::Sharded)
                .shards(shards)
                .build()
                .validate()
                .unwrap_err();
            assert!(err.0.contains("shards"), "{err}");
        }
        // The full valid range passes.
        for shards in [1usize, 64] {
            ScenarioSpec::builder(64)
                .engine(EngineSpec::Sharded)
                .shards(shards)
                .build()
                .validate()
                .unwrap();
        }
    }

    #[test]
    fn sparse_engine_rejected_outside_load_only_cell() {
        let bad = [
            ScenarioSpec::builder(64)
                .engine(EngineSpec::Sparse)
                .strategy(StrategySpec::Fifo)
                .build(),
            ScenarioSpec::builder(64)
                .engine(EngineSpec::Sparse)
                .topology(TopologySpec::Ring)
                .build(),
            ScenarioSpec::builder(64)
                .engine(EngineSpec::Sparse)
                .arrival(ArrivalSpec::Tetris)
                .build(),
        ];
        for spec in bad {
            let err = spec.validate().unwrap_err();
            assert!(err.0.contains("sparse engine"), "{err}");
        }
        // Auto never errors — it just resolves to dense there.
        ScenarioSpec::builder(64)
            .engine(EngineSpec::Auto)
            .strategy(StrategySpec::Fifo)
            .build()
            .validate()
            .unwrap();
    }

    #[test]
    fn with_seed_only_changes_seed() {
        let spec = full_spec();
        let reseeded = spec.with_seed(99);
        assert_eq!(reseeded.seed, 99);
        assert_eq!(reseeded.with_seed(spec.seed), spec);
    }

    #[test]
    fn weighted_spec_round_trips_and_validates() {
        let spec = ScenarioSpec::builder(64)
            .weights(WeightsSpec::Zipf {
                s: 1.0,
                w_max: None,
            })
            .capacities(CapacitiesSpec::Uniform { c: 40 })
            .horizon_rounds(100)
            .build();
        spec.validate().unwrap();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        assert!(json.contains("\"kind\": \"zipf\""), "{json}");
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        assert!(spec.is_weighted());

        let explicit = ScenarioSpec::builder(4)
            .balls(4)
            .weights(WeightsSpec::Explicit(vec![5, 1, 2, 1]))
            .capacities(CapacitiesSpec::Explicit(vec![9, 9, 9, 9]))
            .build();
        explicit.validate().unwrap();
        let json = serde_json::to_string_pretty(&explicit).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, explicit);
    }

    #[test]
    fn old_spec_json_without_weighted_keys_still_parses() {
        // The pre-weights schema (no `weights`/`capacities` keys) must keep
        // parsing to the unit model — every committed spec predates them.
        let json = r#"{
            "n": 64,
            "start": {"kind": "one-per-bin"},
            "arrival": {"kind": "uniform"},
            "topology": {"kind": "complete"},
            "horizon": {"kind": "factor-n", "factor": 10},
            "stop": "horizon",
            "seed": 7
        }"#;
        let spec: ScenarioSpec = serde_json::from_str(json).unwrap();
        assert_eq!(spec.weights, None);
        assert_eq!(spec.capacities, None);
        assert!(!spec.is_weighted());
        assert_eq!(spec.core_weights(), rbb_core::weights::Weights::Unit);
        assert!(spec.core_capacities().is_unbounded());
    }

    #[test]
    fn unit_weight_specs_are_not_weighted() {
        // All three spellings of "everything weighs 1" are recognized as
        // the unit model without materializing a weight vector.
        for w in [
            WeightsSpec::Unit,
            WeightsSpec::Zipf {
                s: 2.0,
                w_max: Some(1),
            },
            WeightsSpec::Explicit(vec![1; 64]),
        ] {
            let spec = ScenarioSpec::builder(64).weights(w.clone()).build();
            spec.validate().unwrap();
            assert!(!spec.is_weighted(), "{w:?}");
            assert!(spec.core_weights().is_unit(), "{w:?}");
        }
    }

    #[test]
    fn weighted_validation_catches_bad_specs() {
        let bad = [
            // Outside the load-only cell.
            ScenarioSpec::builder(64)
                .weights(WeightsSpec::Unit)
                .strategy(StrategySpec::Fifo)
                .build(),
            ScenarioSpec::builder(64)
                .capacities(CapacitiesSpec::Uniform { c: 4 })
                .topology(TopologySpec::Ring)
                .build(),
            ScenarioSpec::builder(64)
                .weights(WeightsSpec::Zipf {
                    s: 1.0,
                    w_max: None,
                })
                .arrival(ArrivalSpec::DChoice { d: 2 })
                .build(),
            // Weighted + adversary.
            ScenarioSpec::builder(64)
                .weights(WeightsSpec::Zipf {
                    s: 1.0,
                    w_max: None,
                })
                .adversary(
                    AdversaryKindSpec::AllInOne,
                    ScheduleSpec::Gamma { gamma: 6 },
                )
                .build(),
            // Bad zipf parameters.
            ScenarioSpec::builder(64)
                .weights(WeightsSpec::Zipf {
                    s: f64::NAN,
                    w_max: None,
                })
                .build(),
            ScenarioSpec::builder(64)
                .weights(WeightsSpec::Zipf {
                    s: -1.0,
                    w_max: None,
                })
                .build(),
            ScenarioSpec::builder(64)
                .weights(WeightsSpec::Zipf {
                    s: 0.0,
                    w_max: None,
                })
                .build(),
            ScenarioSpec::builder(64)
                .weights(WeightsSpec::Zipf {
                    s: 1.0,
                    w_max: Some(0),
                })
                .build(),
            // Wrong arities / zero entries.
            ScenarioSpec::builder(64)
                .weights(WeightsSpec::Explicit(vec![2, 3]))
                .build(),
            ScenarioSpec::builder(64)
                .weights(WeightsSpec::Explicit(vec![1; 63]))
                .build(),
            ScenarioSpec::builder(4)
                .balls(4)
                .weights(WeightsSpec::Explicit(vec![1, 0, 1, 1]))
                .build(),
            ScenarioSpec::builder(64)
                .capacities(CapacitiesSpec::Explicit(vec![4, 4]))
                .build(),
            ScenarioSpec::builder(64)
                .capacities(CapacitiesSpec::Uniform { c: 0 })
                .build(),
        ];
        for spec in bad {
            assert!(spec.validate().is_err(), "accepted: {spec:?}");
        }
        // A unit weights field beside an adversary stays legal: the engine
        // is the plain unit engine.
        ScenarioSpec::builder(64)
            .weights(WeightsSpec::Unit)
            .adversary(
                AdversaryKindSpec::AllInOne,
                ScheduleSpec::Gamma { gamma: 6 },
            )
            .build()
            .validate()
            .unwrap();
    }

    #[test]
    fn weighted_mass_never_auto_selects_sharded() {
        // Unit-weight control at the sharded auto threshold: sharded.
        let unit = ScenarioSpec::builder(SHARDED_AUTO_MIN_N).build();
        assert_eq!(unit.resolved_engine(), EngineSpec::Sharded);
        // The same spec with non-unit weights resolves dense instead.
        let weighted = ScenarioSpec::builder(SHARDED_AUTO_MIN_N)
            .weights(WeightsSpec::Zipf {
                s: 1.0,
                w_max: None,
            })
            .build();
        assert_eq!(weighted.resolved_engine(), EngineSpec::Dense);
        // Capacity bounds alone also block the silent stream flip.
        let capped = ScenarioSpec::builder(SHARDED_AUTO_MIN_N)
            .capacities(CapacitiesSpec::Uniform { c: 30 })
            .build();
        assert_eq!(capped.resolved_engine(), EngineSpec::Dense);
        // A unit weights field does not: it is the same engine.
        let unit_field = ScenarioSpec::builder(SHARDED_AUTO_MIN_N)
            .weights(WeightsSpec::Unit)
            .build();
        assert_eq!(unit_field.resolved_engine(), EngineSpec::Sharded);
        // The sparse pick is unaffected by weights (bit-identical engines).
        let sparse = ScenarioSpec::builder(4096)
            .balls(8)
            .start(StartSpec::AllInOne)
            .weights(WeightsSpec::Zipf {
                s: 1.0,
                w_max: None,
            })
            .build();
        assert_eq!(sparse.resolved_engine(), EngineSpec::Sparse);
        // Explicit sharded + weights stays allowed — an opt-in.
        ScenarioSpec::builder(64)
            .weights(WeightsSpec::Zipf {
                s: 1.0,
                w_max: None,
            })
            .engine(EngineSpec::Sharded)
            .build()
            .validate()
            .unwrap();
    }
}
