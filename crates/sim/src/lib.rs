//! # rbb-sim — the experiment harness
//!
//! Deterministic seeding ([`seed::SeedTree`]), rayon-parallel trial fan-out
//! ([`runner`]) including the whole-grid [`runner::sweep_par`], aligned text
//! tables ([`table`]), and JSON/CSV artifact output ([`output`]). Every
//! experiment in `rbb-experiments` is a pure function of its
//! [`seed::SeedTree`] scope, so tables regenerate bit-identically regardless
//! of thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod output;
pub mod runner;
pub mod seed;
pub mod table;

pub use output::{OutputSink, RESULTS_DIR};
pub use runner::{run_trials, run_trials_seeded, sweep, sweep_par, sweep_par_seeded};
pub use seed::{SeedTree, DEFAULT_MASTER_SEED};
pub use table::{fmt_f64, Table};
