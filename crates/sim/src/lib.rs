//! # rbb-sim — the experiment harness
//!
//! Deterministic seeding ([`seed::SeedTree`]), rayon-parallel trial fan-out
//! ([`runner`]) including the whole-grid [`runner::sweep_par`], aligned text
//! tables ([`table`]), JSON/CSV artifact output ([`output`]) — and the
//! declarative scenario layer: [`spec::ScenarioSpec`] describes a complete
//! simulation (n, balls, start, arrival model, queue strategy, topology,
//! adversary schedule, horizon, stop condition) as serializable data, and
//! [`scenario::Scenario`] runs it through the unified
//! [`Engine`](rbb_core::engine::Engine) trait; [`ensemble::EnsembleSpec`]
//! replicates one scenario across many seeds and folds the trials into
//! mergeable streaming statistics (see the [`ensemble`] module for the
//! determinism contract and report schema). Every experiment in
//! `rbb-experiments` is a pure function of its [`seed::SeedTree`] scope, so
//! tables regenerate bit-identically regardless of thread count; spec-built
//! engines reproduce the hand-constructed trajectories bit for bit (see the
//! determinism notes in [`spec`]).
//!
//! ## Spec quickstart
//!
//! ```
//! use rbb_sim::{ScenarioSpec, StrategySpec, StopSpec};
//!
//! // LIFO queues + cover-time stop, straight from data — no new code.
//! let spec = ScenarioSpec::builder(64)
//!     .strategy(StrategySpec::Lifo)
//!     .stop(StopSpec::Covered)
//!     .horizon_rounds(10_000_000)
//!     .seed(7)
//!     .build();
//! let outcome = spec.scenario().unwrap().run();
//! assert!(outcome.stop_round.is_some(), "covers w.h.p.");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ensemble;
pub mod output;
pub mod runner;
pub mod scenario;
pub mod seed;
pub mod spec;
pub mod table;

pub use ensemble::{
    EnsembleReport, EnsembleSpec, MetricKind, MetricReport, MetricSpec, ReportSpec,
};
pub use output::{OutputSink, RESULTS_DIR};
pub use runner::{run_trials, run_trials_seeded, sweep, sweep_par, sweep_par_seeded};
pub use scenario::{build_engine, Scenario, ScenarioOutcome};
pub use seed::{SeedTree, DEFAULT_MASTER_SEED};
pub use spec::{
    AdversaryKindSpec, AdversarySpec, ArrivalSpec, CapacitiesSpec, EngineSpec, HorizonSpec,
    ScenarioSpec, ScenarioSpecBuilder, ScheduleSpec, SpecError, StartSpec, StopSpec, StrategySpec,
    TopologySpec, WeightsSpec, SPARSE_AUTO_RATIO,
};
pub use table::{fmt_f64, Table};
