//! Single random walks: cover time of the one-token baseline.
//!
//! Section 4 compares the parallel (n-token) cover time `O(n log² n)` to the
//! single-token cover time, which is `O(n log n)` w.h.p. on the clique
//! (coupon collector). This module provides the single-walk measurement on
//! any topology.

use rbb_core::rng::Xoshiro256pp;

use crate::graph::Graph;

/// A single random walk on a graph.
#[derive(Debug, Clone)]
pub struct RandomWalk<'g> {
    graph: &'g Graph,
    position: usize,
    steps: u64,
}

impl<'g> RandomWalk<'g> {
    /// Starts a walk at `start`.
    pub fn new(graph: &'g Graph, start: usize) -> Self {
        assert!(start < graph.n());
        Self {
            graph,
            position: start,
            steps: 0,
        }
    }

    /// Current vertex.
    #[inline]
    pub fn position(&self) -> usize {
        self.position
    }

    /// Steps taken so far.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Moves to a uniformly random neighbor; returns the new vertex.
    #[inline]
    pub fn step(&mut self, rng: &mut Xoshiro256pp) -> usize {
        self.position = self.graph.random_neighbor(self.position, rng);
        self.steps += 1;
        self.position
    }
}

/// Runs a walk from `start` until all vertices are visited or `cap` steps
/// elapse; returns the cover time (number of steps) if covered.
pub fn cover_time(graph: &Graph, start: usize, cap: u64, rng: &mut Xoshiro256pp) -> Option<u64> {
    let n = graph.n();
    let mut visited = vec![false; n];
    visited[start] = true;
    let mut remaining = n - 1;
    if remaining == 0 {
        return Some(0);
    }
    let mut walk = RandomWalk::new(graph, start);
    while walk.steps() < cap {
        let v = walk.step(rng);
        if !visited[v] {
            visited[v] = true;
            remaining -= 1;
            if remaining == 0 {
                return Some(walk.steps());
            }
        }
    }
    None
}

/// Hitting time from `start` to `target` (capped).
pub fn hitting_time(
    graph: &Graph,
    start: usize,
    target: usize,
    cap: u64,
    rng: &mut Xoshiro256pp,
) -> Option<u64> {
    if start == target {
        return Some(0);
    }
    let mut walk = RandomWalk::new(graph, start);
    while walk.steps() < cap {
        if walk.step(rng) == target {
            return Some(walk.steps());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{complete_with_loops, ring};

    #[test]
    fn walk_stays_on_graph() {
        let g = ring(10);
        let mut rng = Xoshiro256pp::seed_from(1);
        let mut w = RandomWalk::new(&g, 0);
        let mut prev = 0usize;
        for _ in 0..100 {
            let v = w.step(&mut rng);
            assert!(g.neighbors(prev).contains(&(v as u32)));
            prev = v;
        }
        assert_eq!(w.steps(), 100);
    }

    #[test]
    fn cover_time_on_clique_is_coupon_collector_scale() {
        let n = 64;
        let g = complete_with_loops(n);
        let mut rng = Xoshiro256pp::seed_from(2);
        let mut total = 0u64;
        let trials = 20;
        for _ in 0..trials {
            total += cover_time(&g, 0, 1_000_000, &mut rng).unwrap();
        }
        let mean = total as f64 / trials as f64;
        let cc = rbb_stats::coupon_collector(n);
        // Mean cover ≈ n·H_n; allow generous slack.
        assert!(mean > 0.5 * cc && mean < 2.0 * cc, "mean {mean}, cc {cc}");
    }

    #[test]
    fn cover_time_single_vertex_graph() {
        // A 2-clique from the same start: must cover in >= 1 step.
        let g = complete_with_loops(2);
        let mut rng = Xoshiro256pp::seed_from(3);
        let t = cover_time(&g, 0, 1000, &mut rng).unwrap();
        assert!(t >= 1);
    }

    #[test]
    fn cover_time_cap_returns_none() {
        let g = ring(1000);
        let mut rng = Xoshiro256pp::seed_from(4);
        // Ring cover time is Θ(n²); 10 steps cannot cover n=1000.
        assert_eq!(cover_time(&g, 0, 10, &mut rng), None);
    }

    #[test]
    fn hitting_time_self_is_zero() {
        let g = ring(8);
        let mut rng = Xoshiro256pp::seed_from(5);
        assert_eq!(hitting_time(&g, 3, 3, 100, &mut rng), Some(0));
    }

    #[test]
    fn hitting_time_adjacent_on_ring() {
        let g = ring(8);
        let mut rng = Xoshiro256pp::seed_from(6);
        let t = hitting_time(&g, 0, 1, 100_000, &mut rng).unwrap();
        assert!(t >= 1);
    }

    #[test]
    fn ring_cover_is_quadratic_scale() {
        // Ring cover time ~ n(n-1)/2 in expectation.
        let n = 32;
        let g = ring(n);
        let mut rng = Xoshiro256pp::seed_from(7);
        let trials = 20;
        let mut total = 0u64;
        for _ in 0..trials {
            total += cover_time(&g, 0, 10_000_000, &mut rng).unwrap();
        }
        let mean = total as f64 / trials as f64;
        let expect = (n * (n - 1)) as f64 / 2.0;
        assert!(mean > 0.5 * expect && mean < 2.0 * expect, "mean {mean}");
    }
}
