//! Structural graph properties: distances, diameter, degree statistics and
//! a spectral-gap estimate for the walk's transition matrix.
//!
//! The prior work \[12\] ties the constrained-walk behavior on regular graphs
//! to spectral expansion; these helpers let the topology experiments report
//! the structural context (diameter, gap) next to the congestion numbers.

use std::collections::VecDeque;

use crate::graph::Graph;

/// BFS distances from `source` (`usize::MAX` for unreachable vertices).
pub fn bfs_distances(graph: &Graph, source: usize) -> Vec<usize> {
    let n = graph.n();
    assert!(source < n);
    let mut dist = vec![usize::MAX; n];
    dist[source] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        for &w in graph.neighbors(v) {
            let w = w as usize;
            if dist[w] == usize::MAX {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Eccentricity of a vertex (longest shortest path from it); `None` if the
/// graph is disconnected.
pub fn eccentricity(graph: &Graph, v: usize) -> Option<usize> {
    let d = bfs_distances(graph, v);
    d.iter().copied().max().filter(|&m| m != usize::MAX)
}

/// Exact diameter via all-sources BFS (`O(n·(n+m))`; fine at experiment
/// sizes). `None` if disconnected.
pub fn diameter(graph: &Graph) -> Option<usize> {
    (0..graph.n())
        .map(|v| eccentricity(graph, v))
        .try_fold(0usize, |acc, e| e.map(|e| acc.max(e)))
}

/// Degree summary: (min, max, mean).
pub fn degree_stats(graph: &Graph) -> (usize, usize, f64) {
    let degrees: Vec<usize> = (0..graph.n()).map(|v| graph.degree(v)).collect();
    let min = *degrees.iter().min().expect("non-empty graph");
    let max = *degrees.iter().max().expect("non-empty graph");
    let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
    (min, max, mean)
}

/// Estimates the second-largest eigenvalue modulus (SLEM) of the *lazy*
/// random-walk matrix `(I + P)/2` by power iteration on the component
/// orthogonal to the stationary distribution. The spectral gap `1 − λ₂`
/// controls the single-walk mixing time.
///
/// Works on connected graphs; the laziness removes periodicity (e.g. on
/// bipartite graphs like even rings or hypercubes, plain `P` has an
/// eigenvalue −1 that would dominate).
pub fn lazy_walk_slem(graph: &Graph, iterations: usize) -> f64 {
    let n = graph.n();
    assert!(n >= 2);
    // Stationary distribution of the (lazy) walk: proportional to degree.
    let total_degree: f64 = (0..n).map(|v| graph.degree(v) as f64).sum();
    let pi: Vec<f64> = (0..n)
        .map(|v| graph.degree(v) as f64 / total_degree)
        .collect();

    // Deterministic pseudo-random start vector, orthogonalized against π in
    // the π-weighted inner product (left eigenvector convention on
    // distributions row-vector × P).
    let mut x: Vec<f64> = (0..n)
        .map(|v| (v as f64 * 0.7548776662466927).fract() - 0.5)
        .collect();

    let mut lambda = 0.0;
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        // Project out the stationary component: x ← x − (Σx_v)·π.
        let mass: f64 = x.iter().sum();
        for v in 0..n {
            x[v] -= mass * pi[v];
        }
        // One application of the lazy kernel to the distribution x:
        // next[w] = x[w]/2 + Σ_{v: w∈N(v)} x[v] / (2 deg v).
        next.iter_mut().for_each(|e| *e = 0.0);
        for v in 0..n {
            let dv = graph.degree(v) as f64;
            let share = x[v] / (2.0 * dv);
            for &w in graph.neighbors(v) {
                next[w as usize] += share;
            }
            next[v] += x[v] / 2.0;
        }
        let norm_prev: f64 = x.iter().map(|a| a * a).sum::<f64>().sqrt();
        let norm_next: f64 = next.iter().map(|a| a * a).sum::<f64>().sqrt();
        if norm_prev == 0.0 || norm_next == 0.0 {
            return 0.0;
        }
        lambda = norm_next / norm_prev;
        let scale = 1.0 / norm_next;
        for (xv, nv) in x.iter_mut().zip(&next) {
            *xv = nv * scale;
        }
    }
    lambda.min(1.0)
}

/// The spectral gap `1 − λ₂` of the lazy walk.
pub fn spectral_gap(graph: &Graph, iterations: usize) -> f64 {
    1.0 - lazy_walk_slem(graph, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{complete, complete_with_loops, hypercube, path, ring, star, torus};

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn diameter_of_standard_graphs() {
        assert_eq!(diameter(&complete(8)), Some(1));
        assert_eq!(diameter(&ring(8)), Some(4));
        assert_eq!(diameter(&ring(9)), Some(4));
        assert_eq!(diameter(&path(6)), Some(5));
        assert_eq!(diameter(&star(10)), Some(2));
        assert_eq!(diameter(&hypercube(5)), Some(5));
        assert_eq!(diameter(&torus(4, 4)), Some(4));
    }

    #[test]
    fn disconnected_diameter_is_none() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, 0), None);
    }

    #[test]
    fn degree_stats_of_star() {
        let (min, max, mean) = degree_stats(&star(5));
        assert_eq!(min, 1);
        assert_eq!(max, 4);
        assert!((mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_has_large_gap() {
        // Lazy walk on K_n: λ₂ = 1/2 − 1/(2(n−1)) ⇒ gap slightly above 1/2.
        let gap = spectral_gap(&complete(32), 300);
        assert!(gap > 0.45 && gap < 0.65, "gap {gap}");
    }

    #[test]
    fn ring_has_tiny_gap() {
        let gap_ring = spectral_gap(&ring(64), 2000);
        let gap_clique = spectral_gap(&complete(64), 300);
        assert!(
            gap_ring < gap_clique / 5.0,
            "ring {gap_ring} vs clique {gap_clique}"
        );
        // Lazy ring gap ≈ (1 − cos(2π/n))/2 ≈ 2.4e-3 for n = 64.
        assert!(gap_ring > 1e-4 && gap_ring < 0.02, "ring gap {gap_ring}");
    }

    #[test]
    fn hypercube_gap_is_one_over_d() {
        // Lazy hypercube: gap = 1/d.
        let d = 6u32;
        let gap = spectral_gap(&hypercube(d), 1500);
        assert!((gap - 1.0 / d as f64).abs() < 0.03, "gap {gap}");
    }

    #[test]
    fn clique_with_loops_mixes_fastest() {
        let gap = spectral_gap(&complete_with_loops(32), 300);
        assert!(gap > 0.45, "gap {gap}");
    }
}
