//! # rbb-graphs — graph substrate for the open-question experiments
//!
//! The repeated balls-into-bins process is the complete-graph case of
//! *constrained parallel token walks*: each node forwards at most one token
//! per round to a uniformly random neighbor. Section 5 of the paper asks how
//! the maximum load behaves on general (regular) graphs; this crate provides
//! the topologies (ring, torus, hypercube, random regular, Erdős–Rényi,
//! clique with/without self-loops), single random walks with cover/hitting
//! times, and both load-only and token-identity constrained parallel walks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod parallel;
pub mod properties;
pub mod walk;

pub use graph::{
    complete, complete_with_loops, erdos_renyi, hypercube, path, random_regular, ring, star, torus,
    Graph,
};
pub use parallel::{GraphLoadProcess, GraphTokenProcess};
pub use properties::{bfs_distances, degree_stats, diameter, eccentricity, spectral_gap};
pub use walk::{cover_time, hitting_time, RandomWalk};
