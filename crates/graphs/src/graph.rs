//! Compact CSR graph representation and the topology builders used by the
//! Section-5 open-question experiments (ring, torus, hypercube, random
//! regular, …).

use rbb_core::rng::Xoshiro256pp;

/// An undirected graph in compressed-sparse-row form.
///
/// Parallel edges are permitted (they arise in the configuration-model
/// builder and are harmless for random walks — they just bias the neighbor
/// choice exactly as the model dictates). Self-loops are permitted too and
/// count once in the adjacency list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an edge list over `n` vertices. Each undirected
    /// edge `(u, v)` contributes `v` to `u`'s list and `u` to `v`'s list
    /// (a self-loop contributes a single entry).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        assert!(n >= 1);
        let mut degree = vec![0usize; n];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge out of range");
            degree[u as usize] += 1;
            if u != v {
                degree[v as usize] += 1;
            }
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut neighbors = vec![0u32; offsets[n]];
        let mut cursor = offsets.clone();
        for &(u, v) in edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            if u != v {
                neighbors[cursor[v as usize]] = u;
                cursor[v as usize] += 1;
            }
        }
        Self { offsets, neighbors }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (self-loops count once).
    pub fn num_edges(&self) -> usize {
        let loops = (0..self.n())
            .map(|v| {
                self.neighbors(v)
                    .iter()
                    .filter(|&&w| w as usize == v)
                    .count()
            })
            .sum::<usize>();
        (self.neighbors.len() - loops) / 2 + loops
    }

    /// Degree of `v` (self-loop counts 1).
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// A uniformly random neighbor of `v`. Panics if `v` is isolated.
    #[inline]
    pub fn random_neighbor(&self, v: usize, rng: &mut Xoshiro256pp) -> usize {
        let ns = self.neighbors(v);
        assert!(!ns.is_empty(), "vertex {v} is isolated");
        ns[rng.uniform_usize(ns.len())] as usize
    }

    /// Whether every vertex has the same degree; returns that degree.
    pub fn regular_degree(&self) -> Option<usize> {
        let d = self.degree(0);
        (1..self.n()).all(|v| self.degree(v) == d).then_some(d)
    }

    /// Whether the graph is connected (BFS from vertex 0; true for n = 1).
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0usize]);
        seen[0] = true;
        let mut visited = 1;
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                let w = w as usize;
                if !seen[w] {
                    seen[w] = true;
                    visited += 1;
                    queue.push_back(w);
                }
            }
        }
        visited == n
    }
}

/// The complete graph `K_n` **without** self-loops. On `K_n` the constrained
/// parallel walk differs from the paper's process only in that the paper
/// allows a ball to land back in its own bin; use [`complete_with_loops`]
/// for the exact equivalence.
pub fn complete(n: usize) -> Graph {
    assert!(n >= 2);
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// The complete graph with a self-loop at every vertex: a uniform neighbor
/// choice is then uniform over all `n` bins — *exactly* the paper's
/// re-assignment law.
pub fn complete_with_loops(n: usize) -> Graph {
    assert!(n >= 2);
    let mut edges = Vec::with_capacity(n * (n + 1) / 2);
    for u in 0..n as u32 {
        edges.push((u, u));
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// The cycle (ring) on `n ≥ 3` vertices — the paper's "simple topologies
/// such as rings" where the open question is hardest.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3);
    let edges: Vec<(u32, u32)> = (0..n as u32).map(|u| (u, (u + 1) % n as u32)).collect();
    Graph::from_edges(n, &edges)
}

/// The path on `n ≥ 2` vertices (non-regular control case).
pub fn path(n: usize) -> Graph {
    assert!(n >= 2);
    let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|u| (u, u + 1)).collect();
    Graph::from_edges(n, &edges)
}

/// The star with center 0 and `n − 1` leaves (maximally irregular).
pub fn star(n: usize) -> Graph {
    assert!(n >= 2);
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
    Graph::from_edges(n, &edges)
}

/// The `rows × cols` torus (wrap-around grid; 4-regular when both ≥ 3).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dims ≥ 3");
    let n = rows * cols;
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            edges.push((idx(r, c), idx(r, (c + 1) % cols)));
            edges.push((idx(r, c), idx((r + 1) % rows, c)));
        }
    }
    Graph::from_edges(n, &edges)
}

/// The `d`-dimensional hypercube (`2^d` vertices, `d`-regular).
pub fn hypercube(d: u32) -> Graph {
    assert!((1..=24).contains(&d));
    let n = 1usize << d;
    let mut edges = Vec::with_capacity(n * d as usize / 2);
    for u in 0..n as u32 {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if u < v {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// A random simple `d`-regular graph via the configuration model with
/// edge-swap repair: `n·d` must be even and `d < n`. A random stub pairing
/// is drawn; self-loops and parallel edges are then removed by degree-
/// preserving double-edge swaps against uniformly random partner edges
/// (the standard "erased-with-repair" construction). Finally the result is
/// resampled until connected (a.a.s. immediate for `d ≥ 3`).
pub fn random_regular(n: usize, d: usize, rng: &mut Xoshiro256pp) -> Graph {
    assert!(n >= 2 && d >= 1, "need n ≥ 2, d ≥ 1");
    assert!(n * d % 2 == 0, "n·d must be even");
    assert!(d < n, "d must be < n");
    use rbb_core::det_hash::DetHashMap;
    let norm = |a: u32, b: u32| (a.min(b), a.max(b));
    'resample: loop {
        let mut stubs: Vec<u32> = (0..n as u32)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        rng.shuffle(&mut stubs);
        let mut edges: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|p| norm(p[0], p[1])).collect();

        let mut counts: DetHashMap<(u32, u32), u32> = DetHashMap::default();
        for &e in &edges {
            *counts.entry(e).or_insert(0) += 1;
        }
        let is_bad = |key: (u32, u32), counts: &DetHashMap<(u32, u32), u32>| {
            key.0 == key.1 || counts[&key] > 1
        };
        let mut bad: Vec<usize> = (0..edges.len())
            .filter(|&i| is_bad(edges[i], &counts))
            .collect();

        // Double-edge-swap repair: each bad edge is re-wired against a
        // random partner edge until the swap yields two fresh simple edges.
        let mut attempts = 0usize;
        while let Some(i) = bad.pop() {
            while is_bad(edges[i], &counts) {
                attempts += 1;
                if attempts > 200 * edges.len() {
                    continue 'resample; // pathological pairing; start over
                }
                let j = rng.uniform_usize(edges.len());
                if j == i {
                    continue;
                }
                let (a, b) = edges[i];
                let (c, e) = edges[j];
                // Random orientation of the partner avoids swap bias.
                let (c, e) = if rng.bernoulli(0.5) { (c, e) } else { (e, c) };
                let new1 = norm(a, c);
                let new2 = norm(b, e);
                if new1.0 == new1.1 || new2.0 == new2.1 || new1 == new2 {
                    continue;
                }
                if counts.get(&new1).copied().unwrap_or(0) > 0
                    || counts.get(&new2).copied().unwrap_or(0) > 0
                {
                    continue;
                }
                for old in [edges[i], edges[j]] {
                    let c = counts.get_mut(&old).expect("old edge tracked");
                    *c -= 1;
                    if *c == 0 {
                        counts.remove(&old);
                    }
                }
                counts.insert(new1, 1);
                counts.insert(new2, 1);
                edges[i] = new1;
                edges[j] = new2;
            }
        }

        let g = Graph::from_edges(n, &edges);
        if g.is_connected() {
            return g;
        }
    }
}

/// An Erdős–Rényi `G(n, p)` graph, resampled until connected (choose
/// `p ≳ 2 ln n / n` to keep the retry count small).
pub fn erdos_renyi(n: usize, p: f64, rng: &mut Xoshiro256pp) -> Graph {
    assert!(n >= 2);
    assert!((0.0..=1.0).contains(&p));
    loop {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.bernoulli(p) {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(n, &edges);
        if g.is_connected() {
            return g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_structure() {
        let g = complete(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.regular_degree(), Some(4));
        assert!(g.is_connected());
    }

    #[test]
    fn complete_with_loops_degree() {
        let g = complete_with_loops(4);
        assert_eq!(g.regular_degree(), Some(4)); // 3 neighbors + self
        for v in 0..4 {
            assert!(g.neighbors(v).contains(&(v as u32)));
        }
    }

    #[test]
    fn ring_structure() {
        let g = ring(6);
        assert_eq!(g.regular_degree(), Some(2));
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_connected());
        assert_eq!(g.neighbors(0).len(), 2);
    }

    #[test]
    fn path_endpoints_have_degree_one() {
        let g = path(5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(4), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.regular_degree(), None);
        assert!(g.is_connected());
    }

    #[test]
    fn star_structure() {
        let g = star(9);
        assert_eq!(g.degree(0), 8);
        assert!((1..9).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn torus_is_four_regular() {
        let g = torus(4, 5);
        assert_eq!(g.n(), 20);
        assert_eq!(g.regular_degree(), Some(4));
        assert!(g.is_connected());
        assert_eq!(g.num_edges(), 40);
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.regular_degree(), Some(4));
        assert!(g.is_connected());
        assert_eq!(g.num_edges(), 32);
        // Neighbors differ by exactly one bit.
        for &w in g.neighbors(0b0101) {
            assert_eq!((w ^ 0b0101u32).count_ones(), 1);
        }
    }

    #[test]
    fn random_regular_is_regular_and_connected() {
        let mut rng = Xoshiro256pp::seed_from(1);
        let g = random_regular(50, 4, &mut rng);
        assert_eq!(g.regular_degree(), Some(4));
        assert!(g.is_connected());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn random_regular_rejects_odd_product() {
        let mut rng = Xoshiro256pp::seed_from(2);
        random_regular(5, 3, &mut rng);
    }

    #[test]
    fn erdos_renyi_connected_by_construction() {
        let mut rng = Xoshiro256pp::seed_from(3);
        let g = erdos_renyi(40, 0.3, &mut rng);
        assert!(g.is_connected());
        assert_eq!(g.n(), 40);
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
    }

    #[test]
    fn random_neighbor_is_a_neighbor() {
        let mut rng = Xoshiro256pp::seed_from(4);
        let g = ring(10);
        for _ in 0..50 {
            let w = g.random_neighbor(3, &mut rng);
            assert!(g.neighbors(3).contains(&(w as u32)));
        }
    }

    #[test]
    fn self_loop_counts_once() {
        let g = Graph::from_edges(2, &[(0, 0), (0, 1)]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn num_edges_counts_undirected() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.num_edges(), 3);
    }
}
