//! Constrained parallel token walks on arbitrary graphs — the
//! generalization of the repeated balls-into-bins process that Section 5
//! poses as an open question.
//!
//! Each node holds a queue of tokens. Per round, every non-empty node
//! forwards exactly one token to a neighbor chosen uniformly at random
//! (on [`crate::graph::complete_with_loops`] this is *exactly* the paper's
//! process). [`GraphLoadProcess`] tracks loads only; [`GraphTokenProcess`]
//! carries token identities and visited-sets for cover-time measurement on
//! general topologies.

use rbb_core::config::Config;
use rbb_core::metrics::RoundObserver;
use rbb_core::rng::Xoshiro256pp;

use crate::graph::Graph;

/// Load-only constrained parallel walk on a graph.
#[derive(Debug, Clone)]
pub struct GraphLoadProcess<'g> {
    graph: &'g Graph,
    config: Config,
    rng: Xoshiro256pp,
    round: u64,
    /// Scratch: arrivals per node this round.
    arrivals: Vec<u32>,
}

impl<'g> GraphLoadProcess<'g> {
    /// Creates the process; `config` must have one load entry per vertex.
    pub fn new(graph: &'g Graph, config: Config, rng: Xoshiro256pp) -> Self {
        assert_eq!(config.n(), graph.n(), "config size must match graph");
        let n = graph.n();
        Self {
            graph,
            config,
            rng,
            round: 0,
            arrivals: vec![0; n],
        }
    }

    /// One token per node.
    pub fn one_per_node(graph: &'g Graph, seed: u64) -> Self {
        Self::new(
            graph,
            Config::one_per_bin(graph.n()),
            Xoshiro256pp::seed_from(seed),
        )
    }

    #[inline]
    /// Current configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    #[inline]
    /// Current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Advances one round; returns the number of tokens that moved.
    pub fn step(&mut self) -> usize {
        let n = self.graph.n();
        self.arrivals.iter_mut().for_each(|a| *a = 0);
        let mut moved = 0usize;
        {
            let loads = self.config.loads();
            for (u, &load) in loads.iter().enumerate().take(n) {
                if load > 0 {
                    let v = self.graph.random_neighbor(u, &mut self.rng);
                    self.arrivals[v] += 1;
                    moved += 1;
                }
            }
        }
        let loads = self.config.loads_slice_mut();
        for (load, &arrived) in loads.iter_mut().zip(&self.arrivals).take(n) {
            if *load > 0 {
                *load -= 1;
            }
            *load += arrived;
        }
        self.round += 1;
        moved
    }

    /// Runs `rounds` rounds with an observer.
    pub fn run(&mut self, rounds: u64, mut observer: impl RoundObserver) {
        for _ in 0..rounds {
            self.step();
            observer.observe(self.round, &self.config);
        }
    }
}

/// Token-identity constrained parallel walk: FIFO queues, visited tracking.
#[derive(Debug, Clone)]
pub struct GraphTokenProcess<'g> {
    graph: &'g Graph,
    queues: Vec<std::collections::VecDeque<u32>>,
    rng: Xoshiro256pp,
    round: u64,
    /// `visited[token]` is a bitmap over vertices (dense words).
    visited: Vec<Vec<u64>>,
    /// Vertices not yet visited, per token.
    unvisited_count: Vec<usize>,
    /// Number of tokens that have covered the whole graph.
    covered_tokens: usize,
    words: usize,
}

impl<'g> GraphTokenProcess<'g> {
    /// Places one token per vertex (token `i` starts at vertex `i`).
    pub fn one_per_node(graph: &'g Graph, seed: u64) -> Self {
        let n = graph.n();
        let words = n.div_ceil(64);
        let mut queues = vec![std::collections::VecDeque::new(); n];
        let mut visited = vec![vec![0u64; words]; n];
        for v in 0..n {
            queues[v].push_back(v as u32);
            visited[v][v / 64] |= 1 << (v % 64);
        }
        Self {
            graph,
            queues,
            rng: Xoshiro256pp::seed_from(seed),
            round: 0,
            visited,
            unvisited_count: vec![n - 1; n],
            covered_tokens: if n == 1 { 1 } else { 0 },
            words,
        }
    }

    #[inline]
    /// Current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of tokens that have visited every vertex.
    #[inline]
    pub fn covered_tokens(&self) -> usize {
        self.covered_tokens
    }

    /// Whether all tokens have covered the graph.
    #[inline]
    pub fn all_covered(&self) -> bool {
        self.covered_tokens == self.queues.len()
    }

    /// Maximum queue length (the congestion measure).
    pub fn max_load(&self) -> usize {
        self.queues.iter().map(|q| q.len()).max().unwrap_or(0)
    }

    /// Advances one round (FIFO release at every non-empty node).
    pub fn step(&mut self) {
        let n = self.graph.n();
        let round = self.round + 1;
        let mut movers: Vec<(u32, u32)> = Vec::new();
        for u in 0..n {
            if let Some(token) = self.queues[u].pop_front() {
                let v = self.graph.random_neighbor(u, &mut self.rng) as u32;
                movers.push((token, v));
            }
        }
        for &(token, v) in &movers {
            self.queues[v as usize].push_back(token);
            let t = token as usize;
            let (w, b) = ((v as usize) / 64, (v as usize) % 64);
            if self.visited[t][w] & (1 << b) == 0 {
                self.visited[t][w] |= 1 << b;
                self.unvisited_count[t] -= 1;
                if self.unvisited_count[t] == 0 {
                    self.covered_tokens += 1;
                }
            }
        }
        self.round = round;
        debug_assert_eq!(self.words, self.visited[0].len());
    }

    /// Runs until every token has covered the graph or `cap` rounds elapse;
    /// returns the parallel cover time.
    pub fn run_to_cover(&mut self, cap: u64) -> Option<u64> {
        while !self.all_covered() {
            if self.round >= cap {
                return None;
            }
            self.step();
        }
        Some(self.round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{complete_with_loops, hypercube, ring, torus};
    use rbb_core::metrics::{EmptyBinsTracker, MaxLoadTracker};

    #[test]
    fn load_process_conserves_tokens() {
        let g = ring(20);
        let mut p = GraphLoadProcess::one_per_node(&g, 1);
        for _ in 0..100 {
            p.step();
            assert_eq!(p.config().total_balls(), 20);
        }
    }

    #[test]
    fn load_process_on_clique_matches_paper_dynamics() {
        // On K_n with self-loops the destination is uniform over all bins:
        // max load should stay logarithmic as in the paper.
        let g = complete_with_loops(256);
        let mut p = GraphLoadProcess::one_per_node(&g, 2);
        let mut t = MaxLoadTracker::new();
        p.run(1000, &mut t);
        assert!(t.window_max() < 24, "max load {}", t.window_max());
    }

    #[test]
    fn clique_empty_fraction_quarter() {
        let g = complete_with_loops(512);
        let mut p = GraphLoadProcess::one_per_node(&g, 3);
        let mut t = EmptyBinsTracker::new();
        p.run(500, &mut t);
        assert_eq!(t.violations_below_quarter(), 0);
    }

    #[test]
    fn regular_graphs_keep_load_moderate() {
        // The Section-5 conjecture: max load stays logarithmic-ish on
        // regular graphs over moderate windows.
        let g = hypercube(8); // 256 vertices
        let mut p = GraphLoadProcess::one_per_node(&g, 4);
        let mut t = MaxLoadTracker::new();
        p.run(1000, &mut t);
        assert!(t.window_max() < 30, "hypercube max load {}", t.window_max());

        let g = torus(16, 16);
        let mut p = GraphLoadProcess::one_per_node(&g, 5);
        let mut t = MaxLoadTracker::new();
        p.run(1000, &mut t);
        assert!(t.window_max() < 30, "torus max load {}", t.window_max());
    }

    #[test]
    fn token_process_initial_state() {
        let g = ring(8);
        let p = GraphTokenProcess::one_per_node(&g, 6);
        assert_eq!(p.covered_tokens(), 0);
        assert_eq!(p.max_load(), 1);
        assert!(!p.all_covered());
    }

    #[test]
    fn token_process_covers_small_clique() {
        let g = complete_with_loops(16);
        let mut p = GraphTokenProcess::one_per_node(&g, 7);
        let cover = p.run_to_cover(100_000).expect("should cover");
        assert!(cover > 0);
        assert!(p.all_covered());
    }

    #[test]
    fn token_process_covers_ring() {
        let g = ring(12);
        let mut p = GraphTokenProcess::one_per_node(&g, 8);
        let cover = p.run_to_cover(10_000_000).expect("should cover ring");
        // Ring cover for a single walk is Θ(n²); parallel walks with
        // congestion should still finish within the cap.
        assert!(cover >= 11);
    }

    #[test]
    fn token_cover_cap_returns_none() {
        let g = ring(64);
        let mut p = GraphTokenProcess::one_per_node(&g, 9);
        assert_eq!(p.run_to_cover(5), None);
    }

    #[test]
    fn covered_tokens_monotone() {
        let g = complete_with_loops(12);
        let mut p = GraphTokenProcess::one_per_node(&g, 10);
        let mut prev = 0;
        for _ in 0..2000 {
            p.step();
            assert!(p.covered_tokens() >= prev);
            prev = p.covered_tokens();
            if p.all_covered() {
                break;
            }
        }
        assert!(p.all_covered());
    }
}
