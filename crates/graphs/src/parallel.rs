//! Constrained parallel token walks on arbitrary graphs — the
//! generalization of the repeated balls-into-bins process that Section 5
//! poses as an open question.
//!
//! Each node holds a queue of tokens. Per round, every non-empty node
//! forwards exactly one token to a neighbor chosen uniformly at random
//! (on [`crate::graph::complete_with_loops`] this is *exactly* the paper's
//! process). [`GraphLoadProcess`] tracks loads only; [`GraphTokenProcess`]
//! carries token identities (under any [`QueueStrategy`]) and visited-sets
//! for cover-time measurement on general topologies. Both own their graph,
//! so they can stand behind the unified [`Engine`] trait and be built by
//! the `rbb_sim` scenario factory.

use rbb_core::config::Config;
use rbb_core::engine::Engine;
use rbb_core::rng::Xoshiro256pp;
use rbb_core::strategy::QueueStrategy;

use crate::graph::Graph;

/// Load-only constrained parallel walk on a graph.
#[derive(Debug, Clone)]
pub struct GraphLoadProcess {
    graph: Graph,
    config: Config,
    rng: Xoshiro256pp,
    round: u64,
    /// Scratch: arrivals per node this round.
    arrivals: Vec<u32>,
}

impl GraphLoadProcess {
    /// Creates the process; `config` must have one load entry per vertex.
    pub fn new(graph: Graph, config: Config, rng: Xoshiro256pp) -> Self {
        assert_eq!(config.n(), graph.n(), "config size must match graph");
        let n = graph.n();
        Self {
            graph,
            config,
            rng,
            round: 0,
            arrivals: vec![0; n],
        }
    }

    /// One token per node.
    pub fn one_per_node(graph: Graph, seed: u64) -> Self {
        let config = Config::one_per_bin(graph.n());
        Self::new(graph, config, Xoshiro256pp::seed_from(seed))
    }

    /// The topology being walked.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    #[inline]
    /// Current configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    #[inline]
    /// Current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Advances one round; returns the number of tokens that moved.
    pub fn step(&mut self) -> usize {
        let n = self.graph.n();
        self.arrivals.iter_mut().for_each(|a| *a = 0);
        let mut moved = 0usize;
        {
            let loads = self.config.loads();
            for (u, &load) in loads.iter().enumerate().take(n) {
                if load > 0 {
                    let v = self.graph.random_neighbor(u, &mut self.rng);
                    self.arrivals[v] += 1;
                    moved += 1;
                }
            }
        }
        let loads = self.config.loads_slice_mut();
        for (load, &arrived) in loads.iter_mut().zip(&self.arrivals).take(n) {
            if *load > 0 {
                *load -= 1;
            }
            *load += arrived;
        }
        self.round += 1;
        moved
    }
}

/// The run family is provided by [`Engine`]. Faults reassign loads by
/// placement (token identities are irrelevant to the load-only walk).
impl Engine for GraphLoadProcess {
    #[inline]
    fn step(&mut self) -> usize {
        GraphLoadProcess::step(self)
    }

    #[inline]
    fn round(&self) -> u64 {
        self.round
    }

    #[inline]
    fn config(&self) -> &Config {
        &self.config
    }

    fn supports_faults(&self) -> bool {
        true
    }

    fn apply_fault(&mut self, placement: &[usize]) {
        assert_eq!(
            placement.len() as u64,
            self.config.total_balls(),
            "adversary must conserve tokens"
        );
        let n = self.graph.n();
        let loads = self.config.loads_slice_mut();
        loads.iter_mut().for_each(|l| *l = 0);
        for &v in placement {
            assert!(v < n, "placement out of range");
            loads[v] += 1;
        }
    }
}

/// Token-identity constrained parallel walk: per-node queues under any
/// [`QueueStrategy`], with visited tracking for cover-time measurement.
#[derive(Debug, Clone)]
pub struct GraphTokenProcess {
    graph: Graph,
    queues: Vec<std::collections::VecDeque<u32>>,
    /// Load vector kept in lock-step with `queues` for O(n) observation.
    config: Config,
    strategy: QueueStrategy,
    rng: Xoshiro256pp,
    round: u64,
    /// `visited[token]` is a bitmap over vertices (dense words).
    visited: Vec<Vec<u64>>,
    /// Vertices not yet visited, per token.
    unvisited_count: Vec<usize>,
    /// Number of tokens that have covered the whole graph.
    covered_tokens: usize,
    words: usize,
}

impl GraphTokenProcess {
    /// Places one token per vertex (token `i` starts at vertex `i`), FIFO
    /// release — the historical default.
    pub fn one_per_node(graph: Graph, seed: u64) -> Self {
        Self::with_strategy(graph, QueueStrategy::Fifo, seed)
    }

    /// Places one token per vertex under an arbitrary queue strategy. FIFO
    /// consumes no selection randomness, so `with_strategy(g, Fifo, s)` is
    /// bit-identical to the historical FIFO-only process.
    pub fn with_strategy(graph: Graph, strategy: QueueStrategy, seed: u64) -> Self {
        let n = graph.n();
        let words = n.div_ceil(64);
        let mut queues = vec![std::collections::VecDeque::new(); n];
        let mut visited = vec![vec![0u64; words]; n];
        for v in 0..n {
            queues[v].push_back(v as u32);
            visited[v][v / 64] |= 1 << (v % 64);
        }
        Self {
            graph,
            queues,
            config: Config::one_per_bin(n),
            strategy,
            rng: Xoshiro256pp::seed_from(seed),
            round: 0,
            visited,
            unvisited_count: vec![n - 1; n],
            covered_tokens: if n == 1 { 1 } else { 0 },
            words,
        }
    }

    /// The topology being walked.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The queue strategy in use.
    #[inline]
    pub fn strategy(&self) -> QueueStrategy {
        self.strategy
    }

    #[inline]
    /// Current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of tokens that have visited every vertex.
    #[inline]
    pub fn covered_tokens(&self) -> usize {
        self.covered_tokens
    }

    /// Whether all tokens have covered the graph.
    #[inline]
    pub fn all_covered(&self) -> bool {
        self.covered_tokens == self.queues.len()
    }

    /// Maximum queue length (the congestion measure).
    pub fn max_load(&self) -> usize {
        self.queues.iter().map(|q| q.len()).max().unwrap_or(0)
    }

    /// Marks `v` visited for `token`, updating coverage counters.
    fn mark_visited(&mut self, token: usize, v: usize) {
        let (w, b) = (v / 64, v % 64);
        if self.visited[token][w] & (1 << b) == 0 {
            self.visited[token][w] |= 1 << b;
            self.unvisited_count[token] -= 1;
            if self.unvisited_count[token] == 0 {
                self.covered_tokens += 1;
            }
        }
    }

    /// Advances one round (every non-empty node releases one token chosen
    /// by the strategy); returns the number of tokens that moved.
    pub fn step(&mut self) -> usize {
        let n = self.graph.n();
        let round = self.round + 1;
        let mut movers: Vec<(u32, u32)> = Vec::new();
        for u in 0..n {
            let len = self.queues[u].len();
            if len == 0 {
                continue;
            }
            let idx = self.strategy.pick(len, &mut self.rng);
            let token = match self.strategy {
                QueueStrategy::Fifo => self.queues[u].pop_front().expect("non-empty"),
                QueueStrategy::Lifo => self.queues[u].pop_back().expect("non-empty"),
                QueueStrategy::Random => {
                    let last = len - 1;
                    self.queues[u].swap(idx, last);
                    self.queues[u].pop_back().expect("non-empty")
                }
            };
            let v = self.graph.random_neighbor(u, &mut self.rng) as u32;
            movers.push((token, v));
        }
        let moved = movers.len();
        {
            let loads = self.config.loads_slice_mut();
            for (u, q) in self.queues.iter().enumerate() {
                loads[u] = q.len() as u32;
            }
        }
        for &(token, v) in &movers {
            self.queues[v as usize].push_back(token);
            self.config.loads_slice_mut()[v as usize] += 1;
            self.mark_visited(token as usize, v as usize);
        }
        self.round = round;
        debug_assert_eq!(self.words, self.visited[0].len());
        moved
    }

    /// Runs until every token has covered the graph or `cap` rounds elapse;
    /// returns the parallel cover time.
    pub fn run_to_cover(&mut self, cap: u64) -> Option<u64> {
        while !self.all_covered() {
            if self.round >= cap {
                return None;
            }
            self.step();
        }
        Some(self.round)
    }

    /// The §4.1 adversary on a graph: `placement[token] = node`. Queue order
    /// after a fault is by token id; the post-fault position counts as
    /// visited (the token is there).
    pub fn adversarial_reassign(&mut self, placement: &[usize]) {
        let n = self.graph.n();
        assert_eq!(placement.len(), n, "one node per token");
        for q in &mut self.queues {
            q.clear();
        }
        for (token, &node) in placement.iter().enumerate() {
            assert!(node < n, "node out of range");
            self.queues[node].push_back(token as u32);
        }
        self.config
            .loads_slice_mut()
            .iter_mut()
            .for_each(|l| *l = 0);
        for (token, &node) in placement.iter().enumerate() {
            self.config.loads_slice_mut()[node] += 1;
            self.mark_visited(token, node);
        }
    }
}

/// The run family is provided by [`Engine`]; `covered` exposes the
/// cover-time goal to generic drivers and stop conditions.
impl Engine for GraphTokenProcess {
    #[inline]
    fn step(&mut self) -> usize {
        GraphTokenProcess::step(self)
    }

    #[inline]
    fn round(&self) -> u64 {
        self.round
    }

    #[inline]
    fn config(&self) -> &Config {
        &self.config
    }

    fn supports_faults(&self) -> bool {
        true
    }

    fn apply_fault(&mut self, placement: &[usize]) {
        self.adversarial_reassign(placement);
    }

    fn covered(&self) -> Option<bool> {
        Some(self.all_covered())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{complete_with_loops, hypercube, ring, torus};
    use rbb_core::metrics::{EmptyBinsTracker, MaxLoadTracker};

    #[test]
    fn load_process_conserves_tokens() {
        let g = ring(20);
        let mut p = GraphLoadProcess::one_per_node(g, 1);
        for _ in 0..100 {
            p.step();
            assert_eq!(p.config().total_balls(), 20);
        }
    }

    #[test]
    fn load_process_on_clique_matches_paper_dynamics() {
        // On K_n with self-loops the destination is uniform over all bins:
        // max load should stay logarithmic as in the paper.
        let g = complete_with_loops(256);
        let mut p = GraphLoadProcess::one_per_node(g, 2);
        let mut t = MaxLoadTracker::new();
        p.run(1000, &mut t);
        assert!(t.window_max() < 24, "max load {}", t.window_max());
    }

    #[test]
    fn clique_empty_fraction_quarter() {
        let g = complete_with_loops(512);
        let mut p = GraphLoadProcess::one_per_node(g, 3);
        let mut t = EmptyBinsTracker::new();
        p.run(500, &mut t);
        assert_eq!(t.violations_below_quarter(), 0);
    }

    #[test]
    fn regular_graphs_keep_load_moderate() {
        // The Section-5 conjecture: max load stays logarithmic-ish on
        // regular graphs over moderate windows.
        let mut p = GraphLoadProcess::one_per_node(hypercube(8), 4); // 256 vertices
        let mut t = MaxLoadTracker::new();
        p.run(1000, &mut t);
        assert!(t.window_max() < 30, "hypercube max load {}", t.window_max());

        let mut p = GraphLoadProcess::one_per_node(torus(16, 16), 5);
        let mut t = MaxLoadTracker::new();
        p.run(1000, &mut t);
        assert!(t.window_max() < 30, "torus max load {}", t.window_max());
    }

    #[test]
    fn load_process_fault_reassigns_loads() {
        let mut p = GraphLoadProcess::one_per_node(ring(8), 11);
        p.apply_fault(&[3; 8]);
        assert_eq!(p.config().loads()[3], 8);
        assert_eq!(p.config().total_balls(), 8);
        p.step();
        assert_eq!(p.config().total_balls(), 8);
    }

    #[test]
    fn token_process_initial_state() {
        let p = GraphTokenProcess::one_per_node(ring(8), 6);
        assert_eq!(p.covered_tokens(), 0);
        assert_eq!(p.max_load(), 1);
        assert!(!p.all_covered());
        assert_eq!(p.config().total_balls(), 8);
    }

    #[test]
    fn token_process_covers_small_clique() {
        let mut p = GraphTokenProcess::one_per_node(complete_with_loops(16), 7);
        let cover = p.run_to_cover(100_000).expect("should cover");
        assert!(cover > 0);
        assert!(p.all_covered());
        assert_eq!(Engine::covered(&p), Some(true));
    }

    #[test]
    fn token_process_covers_ring() {
        let mut p = GraphTokenProcess::one_per_node(ring(12), 8);
        let cover = p.run_to_cover(10_000_000).expect("should cover ring");
        // Ring cover for a single walk is Θ(n²); parallel walks with
        // congestion should still finish within the cap.
        assert!(cover >= 11);
    }

    #[test]
    fn token_cover_cap_returns_none() {
        let mut p = GraphTokenProcess::one_per_node(ring(64), 9);
        assert_eq!(p.run_to_cover(5), None);
    }

    #[test]
    fn covered_tokens_monotone() {
        let mut p = GraphTokenProcess::one_per_node(complete_with_loops(12), 10);
        let mut prev = 0;
        for _ in 0..2000 {
            p.step();
            assert!(p.covered_tokens() >= prev);
            prev = p.covered_tokens();
            if p.all_covered() {
                break;
            }
        }
        assert!(p.all_covered());
    }

    #[test]
    fn fifo_strategy_matches_historical_process() {
        // `with_strategy(Fifo)` must not consume selection randomness: its
        // trajectory must coincide with the pre-strategy FIFO-only walker.
        // The reference below re-implements that historical step loop
        // directly against the graph (pop_front + one neighbor draw per
        // non-empty node, simultaneous arrivals) so a future change that
        // makes the FIFO path consume extra RNG draws fails this test.
        let g = torus(4, 4);
        let n = g.n();
        let mut reference_rng = Xoshiro256pp::seed_from(12);
        let mut queues: Vec<std::collections::VecDeque<u32>> =
            (0..n).map(|v| [v as u32].into_iter().collect()).collect();
        let mut p = GraphTokenProcess::with_strategy(g.clone(), QueueStrategy::Fifo, 12);
        for _ in 0..200 {
            let mut movers: Vec<(u32, usize)> = Vec::new();
            for (u, queue) in queues.iter_mut().enumerate() {
                if let Some(token) = queue.pop_front() {
                    movers.push((token, g.random_neighbor(u, &mut reference_rng)));
                }
            }
            for &(token, v) in &movers {
                queues[v].push_back(token);
            }
            p.step();
            let reference_loads: Vec<u32> = queues.iter().map(|q| q.len() as u32).collect();
            assert_eq!(p.config().loads(), &reference_loads[..]);
            for (u, q) in queues.iter().enumerate() {
                assert_eq!(
                    p.queue_tokens(u),
                    q.iter().copied().collect::<Vec<_>>(),
                    "queue order diverged at node {u}"
                );
            }
        }
    }

    #[test]
    fn all_strategies_cover_the_ring() {
        for strategy in QueueStrategy::ALL {
            let mut p = GraphTokenProcess::with_strategy(ring(8), strategy, 13);
            assert!(
                p.run_to_cover(10_000_000).is_some(),
                "{} failed to cover",
                strategy.label()
            );
        }
    }

    #[test]
    fn token_fault_reassigns_and_marks_visited() {
        let mut p = GraphTokenProcess::one_per_node(ring(8), 14);
        let placement: Vec<usize> = (0..8).map(|i| (i + 2) % 8).collect();
        p.adversarial_reassign(&placement);
        assert_eq!(p.config().total_balls(), 8);
        for (token, &node) in placement.iter().enumerate() {
            assert!(p.visited_contains(token, node));
        }
        p.step();
        assert_eq!(p.config().total_balls(), 8);
    }

    impl GraphTokenProcess {
        /// Test helper: whether `token` has visited `node`.
        fn visited_contains(&self, token: usize, node: usize) -> bool {
            self.visited[token][node / 64] & (1 << (node % 64)) != 0
        }

        /// Test helper: the tokens queued at `node`, front first.
        fn queue_tokens(&self, node: usize) -> Vec<u32> {
            self.queues[node].iter().copied().collect()
        }
    }
}
