//! Session counters and the log2-bucket latency histogram behind the
//! `stats` request.
//!
//! Percentiles are computed over power-of-two buckets with pure integer
//! arithmetic, so a session driven by the fixed-tick
//! [`MockClock`](crate::clock::MockClock) produces byte-identical `stats`
//! responses on every run.

use serde::Serialize;

/// Number of histogram buckets: bucket `i` holds samples whose bit length
/// is `i` (bucket 0 is exactly zero; bucket 64 is `≥ 2^63`).
const BUCKETS: usize = 65;

/// A log2-bucket histogram of nanosecond samples: O(1) record, O(65)
/// quantile, fixed 520-byte footprint regardless of sample count.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Records one nanosecond sample.
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        let bucket = (u64::BITS - nanos.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// The `permille`-th per-mille quantile (500 = p50, 990 = p99) as the
    /// upper bound of the bucket the quantile lands in — integer arithmetic
    /// only, so identical inputs give identical output on every platform.
    /// Returns 0 for an empty histogram.
    pub fn quantile_permille(&self, permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the quantile sample, 1-based, rounded up (the "nearest
        // rank" definition), clamped into [1, count].
        let rank = (self.count * permille).div_ceil(1000).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Median (p50) in nanoseconds.
    pub fn p50(&self) -> u64 {
        self.quantile_permille(500)
    }

    /// 99th percentile in nanoseconds.
    pub fn p99(&self) -> u64 {
        self.quantile_permille(990)
    }
}

/// Largest sample a bucket can hold: bucket `i` covers bit length `i`, so
/// its upper bound is `2^i - 1` (bucket 0 holds exactly 0).
fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Running counters of one serve session.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests handled (including failed ones).
    pub requests: u64,
    /// Requests answered with `"ok": false`.
    pub errors: u64,
    /// Balls placed through `place`.
    pub placements: u64,
    /// Balls removed through `depart` (only counting non-empty hits).
    pub departures: u64,
    /// Rebalancing rounds advanced through `step`.
    pub rounds: u64,
    /// Per-placement latency samples.
    pub place_latency: LatencyHistogram,
}

impl ServeStats {
    /// Renders the counters into the serializable `stats` response payload.
    /// `elapsed_nanos` is the session clock's current reading.
    pub fn report(&self, elapsed_nanos: u64) -> StatsReport {
        let placements_per_sec = if elapsed_nanos == 0 {
            0.0
        } else {
            self.placements as f64 * 1e9 / elapsed_nanos as f64
        };
        StatsReport {
            ok: true,
            requests: self.requests,
            errors: self.errors,
            placements: self.placements,
            departures: self.departures,
            rounds: self.rounds,
            place_p50_nanos: self.place_latency.p50(),
            place_p99_nanos: self.place_latency.p99(),
            elapsed_nanos,
            placements_per_sec,
        }
    }
}

/// The `stats` response payload.
#[derive(Debug, Clone, Serialize)]
pub struct StatsReport {
    /// Always `true` (the response envelope's success flag).
    pub ok: bool,
    /// Requests handled (including failed ones).
    pub requests: u64,
    /// Requests answered with `"ok": false`.
    pub errors: u64,
    /// Balls placed through `place`.
    pub placements: u64,
    /// Balls removed through `depart`.
    pub departures: u64,
    /// Rebalancing rounds advanced through `step`.
    pub rounds: u64,
    /// Median placement latency (bucket upper bound, nanoseconds).
    pub place_p50_nanos: u64,
    /// 99th-percentile placement latency (bucket upper bound, nanoseconds).
    pub place_p99_nanos: u64,
    /// Session clock reading at report time.
    pub elapsed_nanos: u64,
    /// Placement throughput over the session lifetime.
    pub placements_per_sec: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let mut h = LatencyHistogram::new();
        // 98 fast samples (bit length 7 → bucket upper bound 127) and 2
        // slow ones (bucket upper bound 2^20 - 1).
        for _ in 0..98 {
            h.record(100);
        }
        for _ in 0..2 {
            h.record(1 << 19);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 127);
        assert_eq!(h.p99(), (1 << 20) - 1);
        assert_eq!(h.quantile_permille(1000), (1 << 20) - 1);
        assert_eq!(h.quantile_permille(1), 127);
    }

    #[test]
    fn extreme_samples_land_in_the_edge_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.p50(), 0);
        h.record(u64::MAX);
        assert_eq!(h.quantile_permille(1000), u64::MAX);
    }

    #[test]
    fn report_is_deterministic() {
        let mut s = ServeStats {
            requests: 10,
            placements: 8,
            ..Default::default()
        };
        s.place_latency.record(1000);
        let a = serde_json::to_string(&s.report(8_000)).unwrap();
        let b = serde_json::to_string(&s.report(8_000)).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"placements_per_sec\""));
        assert_eq!(s.report(0).placements_per_sec, 0.0);
        assert_eq!(s.report(8_000).placements_per_sec, 1e6);
    }
}
