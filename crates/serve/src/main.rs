//! `rbb-serve` — the allocation daemon binary.
//!
//! ```text
//! rbb-serve --stdio [engine flags]          serve one session over stdin/stdout
//! rbb-serve --socket PATH [engine flags]    serve sequential sessions on a Unix socket
//! rbb-serve --tcp ADDR [engine flags]       serve sequential sessions on a TCP socket
//! rbb-serve --connect PATH                  client: forward stdin lines to a Unix-socket daemon
//!
//! engine flags:
//!   --spec FILE        build the engine from a scenario spec (JSON)
//!   --engine KIND      dense | sparse | sharded | auto (overrides the spec)
//!   --shards K         shard count for the sharded engine
//!   --n N              bins for the default spec (default 1024)
//!   --seed S           seed for the default spec (default 1)
//!   --mock-clock       fixed-tick clock: deterministic stats responses
//! ```
//!
//! The daemon answers one line-JSON response per request line; see
//! `rbb_serve::session` for the protocol. Socket modes accept connections
//! sequentially (one session at a time — the engine is single-threaded
//! state) and exit after a connection issues `shutdown`.

use std::io::{BufReader, BufWriter, Write};

use rbb_serve::clock::{Clock, MockClock, MonotonicClock};
use rbb_serve::session::{serve_lines, Session};
use rbb_sim::spec::EngineSpec;
use rbb_sim::{build_engine, ScenarioSpec};

/// Everything the command line configures.
struct Args {
    mode: Mode,
    spec_path: Option<String>,
    engine: Option<EngineSpec>,
    shards: Option<usize>,
    n: usize,
    seed: u64,
    mock_clock: bool,
}

enum Mode {
    Stdio,
    Socket(String),
    Tcp(String),
    Connect(String),
}

fn main() {
    if let Err(e) = run() {
        eprintln!("rbb-serve: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = parse_args(std::env::args().skip(1))?;
    match &args.mode {
        Mode::Connect(path) => return client(path),
        Mode::Stdio => {
            let mut session = build_session(&args)?;
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve_lines(&mut session, stdin.lock(), BufWriter::new(stdout.lock()))
                .map_err(|e| format!("stdio session: {e}"))?;
        }
        Mode::Socket(path) => {
            let mut session = build_session(&args)?;
            // A stale socket file from a previous daemon would make bind fail.
            let _ = std::fs::remove_file(path);
            let listener = std::os::unix::net::UnixListener::bind(path)
                .map_err(|e| format!("binding {path}: {e}"))?;
            for conn in listener.incoming() {
                let conn = conn.map_err(|e| format!("accept on {path}: {e}"))?;
                let reader =
                    BufReader::new(conn.try_clone().map_err(|e| format!("socket clone: {e}"))?);
                serve_lines(&mut session, reader, BufWriter::new(conn))
                    .map_err(|e| format!("socket session: {e}"))?;
                if session.is_shutdown() {
                    break;
                }
            }
            let _ = std::fs::remove_file(path);
        }
        Mode::Tcp(addr) => {
            let mut session = build_session(&args)?;
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
            for conn in listener.incoming() {
                let conn = conn.map_err(|e| format!("accept on {addr}: {e}"))?;
                let reader =
                    BufReader::new(conn.try_clone().map_err(|e| format!("socket clone: {e}"))?);
                serve_lines(&mut session, reader, BufWriter::new(conn))
                    .map_err(|e| format!("tcp session: {e}"))?;
                if session.is_shutdown() {
                    break;
                }
            }
        }
    }
    Ok(())
}

/// Client mode: lockstep request/response forwarding so scripted drivers
/// (like the `ci.sh` serve stage) can talk to a Unix-socket daemon with
/// nothing but this binary.
fn client(path: &str) -> Result<(), String> {
    use std::io::BufRead;
    let stream = std::os::unix::net::UnixStream::connect(path)
        .map_err(|e| format!("connecting to {path}: {e}"))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("socket clone: {e}"))?,
    );
    let mut writer = BufWriter::new(stream);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| format!("writing to daemon: {e}"))?;
        let mut response = String::new();
        let got = reader
            .read_line(&mut response)
            .map_err(|e| format!("reading from daemon: {e}"))?;
        if got == 0 {
            return Err("daemon closed the connection".to_string());
        }
        out.write_all(response.as_bytes())
            .and_then(|()| out.flush())
            .map_err(|e| format!("stdout: {e}"))?;
    }
    Ok(())
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        mode: Mode::Stdio,
        spec_path: None,
        engine: None,
        shards: None,
        n: 1024,
        seed: 1,
        mock_clock: false,
    };
    let mut mode_set = false;
    let mut argv = argv.peekable();
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--stdio" => {
                args.mode = Mode::Stdio;
                mode_set = true;
            }
            "--socket" => {
                args.mode = Mode::Socket(value("--socket")?);
                mode_set = true;
            }
            "--tcp" => {
                args.mode = Mode::Tcp(value("--tcp")?);
                mode_set = true;
            }
            "--connect" => {
                args.mode = Mode::Connect(value("--connect")?);
                mode_set = true;
            }
            "--spec" => args.spec_path = Some(value("--spec")?),
            "--engine" => {
                args.engine = Some(match value("--engine")?.as_str() {
                    "dense" => EngineSpec::Dense,
                    "sparse" => EngineSpec::Sparse,
                    "sharded" => EngineSpec::Sharded,
                    "auto" => EngineSpec::Auto,
                    other => {
                        return Err(format!(
                            "--engine must be dense | sparse | sharded | auto, got '{other}'"
                        ))
                    }
                });
            }
            "--shards" => {
                let k: usize = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                args.shards = Some(k);
            }
            "--n" => {
                args.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--mock-clock" => args.mock_clock = true,
            "--help" | "-h" => {
                return Err(
                    "usage: rbb-serve (--stdio | --socket PATH | --tcp ADDR | --connect PATH) \
                     [--spec FILE] [--engine KIND] [--shards K] [--n N] [--seed S] [--mock-clock]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    if !mode_set {
        return Err(
            "pick a mode: --stdio, --socket PATH, --tcp ADDR, or --connect PATH".to_string(),
        );
    }
    Ok(args)
}

/// Builds the spec (file or defaults), applies overrides, validates, and
/// wraps the engine into a session.
fn build_session(args: &Args) -> Result<Session, String> {
    let mut spec = match &args.spec_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            serde_json::from_str::<ScenarioSpec>(&text)
                .map_err(|e| format!("parsing {path}: {e}"))?
        }
        None => ScenarioSpec::builder(args.n)
            .name("serve-session")
            .seed(args.seed)
            .build(),
    };
    if let Some(engine) = args.engine {
        spec.engine = Some(engine);
    }
    if let Some(shards) = args.shards {
        spec.shards = Some(shards);
    }
    let engine = build_engine(&spec).map_err(|e| format!("building the engine: {e}"))?;
    let clock: Box<dyn Clock> = if args.mock_clock {
        Box::new(MockClock::new(1000))
    } else {
        Box::new(MonotonicClock::new())
    };
    Ok(Session::new(engine, clock))
}
