//! Injectable time source, so latency accounting is deterministically
//! testable.
//!
//! Simulation results must never depend on time, and `rbb-lint` enforces
//! that for every result-affecting crate — but a daemon's `stats` surface
//! legitimately measures how long placements take. This module confines the
//! tension to one seam: [`Clock`] is the only way serve code may read time,
//! [`MonotonicClock`] is the real implementation (its `Instant::now` sites
//! carry the sanctioned lint allows), and [`MockClock`] advances a counter
//! by a fixed tick per reading so tests and benchmarks get byte-identical
//! latency reports on every run.

use std::time::Instant;

/// A monotone nanosecond counter. `now_nanos` readings never decrease.
pub trait Clock {
    /// Nanoseconds since this clock's origin.
    fn now_nanos(&mut self) -> u64;
}

/// The real, monotonic clock: nanoseconds since construction.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Anchors the clock's origin at the moment of construction.
    pub fn new() -> Self {
        Self {
            // rbb-lint: allow(wall-clock, reason = "the sanctioned Clock seam: timing feeds only the stats surface, never an allocation response; tests inject MockClock instead")
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&mut self) -> u64 {
        // The u128→u64 truncation is unreachable for ~584 years of uptime.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A deterministic clock for tests and benchmarks: starts at zero and
/// advances by a fixed tick on every reading, so every latency interval
/// measured across two readings is exactly one tick.
#[derive(Debug, Clone)]
pub struct MockClock {
    now: u64,
    tick: u64,
}

impl MockClock {
    /// A mock clock advancing `tick_nanos` per reading.
    pub fn new(tick_nanos: u64) -> Self {
        Self {
            now: 0,
            tick: tick_nanos,
        }
    }
}

impl Clock for MockClock {
    fn now_nanos(&mut self) -> u64 {
        let t = self.now;
        self.now = self.now.saturating_add(self.tick);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_ticks_deterministically() {
        let mut c = MockClock::new(250);
        assert_eq!(c.now_nanos(), 0);
        assert_eq!(c.now_nanos(), 250);
        assert_eq!(c.now_nanos(), 500);
        let mut d = MockClock::new(250);
        assert_eq!(d.now_nanos(), 0, "fresh mock clocks replay identically");
    }

    #[test]
    fn monotonic_clock_never_decreases() {
        let mut c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }
}
