//! # rbb-serve — a long-running allocation daemon over the rbb engines
//!
//! The simulation crates answer "run this spec to completion"; this crate
//! answers "keep an engine alive and let clients allocate against it". A
//! [`session::Session`] wraps any [`Engine`](rbb_core::engine::Engine)
//! behind a line-JSON request loop:
//!
//! * `place` — assign one new ball to a uniformly chosen bin (the engine's
//!   own RNG stream decides) and return the bin,
//! * `depart` — remove a ball from a bin,
//! * `step` — advance whole rebalancing rounds,
//! * `query` — the cheap metric surface (loads, max load, legitimacy),
//! * `snapshot` / `restore` — bit-exact checkpointing through
//!   [`rbb_core::snapshot`]: a restored daemon resumes the *identical*
//!   trajectory the uninterrupted one would have taken (the `ci.sh` serve
//!   stage byte-diffs the two),
//! * `stats` — placement-latency percentiles and throughput counters,
//! * `shutdown` — clean exit.
//!
//! The `rbb-serve` binary exposes a session over stdio, a Unix socket, or a
//! TCP socket, one line-JSON request per line, one response line each.
//!
//! # Determinism
//!
//! Everything an allocation response contains is a pure function of the
//! spec, the seed, and the request sequence — never of wall-clock time.
//! Timing feeds only the `stats` surface, through the [`clock::Clock`]
//! abstraction: daemons read the monotonic clock (the sanctioned sites),
//! tests and benchmarks inject the fixed-tick [`clock::MockClock`] so even
//! latency reports are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod session;
pub mod stats;

pub use clock::{Clock, MockClock, MonotonicClock};
pub use session::{serve_lines, Session};
pub use stats::{LatencyHistogram, ServeStats};
