//! The request loop: one engine, line-JSON requests in, line-JSON
//! responses out.
//!
//! ## Protocol
//!
//! Each request is one JSON object on one line with an `"op"` field;
//! each response is one JSON object on one line with an `"ok"` field.
//! Failures are responses, not connection errors: `{"ok":false,"error":…}`.
//!
//! | op | request fields | response fields |
//! |----|----------------|-----------------|
//! | `place` | `count?` (default 1), `weight?` (default 1; ≠ 1 needs a weighted engine) | `bin`+`load` (or `bins` when `count` given), `balls` |
//! | `depart` | `bin` | `removed`, `load`, `balls` |
//! | `step` | `rounds?` (default 1) | `round`, `moved` (last round's movers) |
//! | `query` | `bin?` | `n`, `round`, `balls`, `max_load`, `empty_bins`, `nonempty_bins`, `bound`, `legitimate` (+ `load` when `bin` given; + `total_weight`, `weighted_max_load`, `weighted_bound`, `capacity_violations` on weighted engines) |
//! | `snapshot` | `path?` | `state` (the [`SnapshotState`] object; also written to `path` when given) |
//! | `restore` | `state` or `path` | `engine`, `n`, `round`, `balls` |
//! | `stats` | | the [`crate::stats::StatsReport`] fields |
//! | `shutdown` | | `shutting_down` |
//!
//! ## Determinism
//!
//! Allocation responses are a pure function of the engine state and the
//! request sequence: `place` draws from the engine's own RNG stream, so a
//! session restored from a snapshot answers the *same bins* the
//! uninterrupted session would have — the `ci.sh` serve stage byte-diffs
//! exactly that. Only `stats` reads the clock.

use std::io::{BufRead, Write};

use rbb_core::engine::Engine;
use rbb_core::prelude::LegitimacyThreshold;
use rbb_core::snapshot::{restore, SnapshotState};
use serde::{Deserialize as _, Serialize as _, Value};

use crate::clock::Clock;
use crate::stats::ServeStats;

/// Most placements a single `place` request may batch — a guard against a
/// typo'd `count` stalling the daemon for minutes.
pub const MAX_PLACE_BATCH: u64 = 1_000_000;

/// Most rounds a single `step` request may advance, for the same reason.
pub const MAX_STEP_BATCH: u64 = 10_000_000;

/// A live daemon session: one engine, one clock, running counters.
pub struct Session {
    engine: Box<dyn Engine>,
    clock: Box<dyn Clock>,
    stats: ServeStats,
    shutdown: bool,
}

impl Session {
    /// Wraps an engine and a clock into a fresh session.
    pub fn new(engine: Box<dyn Engine>, clock: Box<dyn Clock>) -> Self {
        Self {
            engine,
            clock,
            stats: ServeStats::default(),
            shutdown: false,
        }
    }

    /// Whether a `shutdown` request has been accepted.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    /// Read-only view of the wrapped engine.
    pub fn engine(&self) -> &dyn Engine {
        self.engine.as_ref()
    }

    /// Read-only view of the session counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Handles one request line, returning one response line (no trailing
    /// newline). Never panics on malformed input: protocol failures become
    /// `{"ok":false,…}` responses.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.stats.requests += 1;
        // Fast path for the bare hot-loop request: skips the generic JSON
        // parse (same semantics as the general path below).
        if line == r#"{"op":"place"}"# {
            return match self.place_one() {
                Ok(resp) => resp,
                Err(e) => self.fail(e),
            };
        }
        let value = match serde_json::parse_value_str(line) {
            Ok(v) => v,
            Err(e) => return self.fail(format!("bad request: {e}")),
        };
        let op = match value.get("op").and_then(Value::as_str) {
            Some(op) => op.to_string(),
            None => return self.fail("request needs a string \"op\" field".to_string()),
        };
        let result = match op.as_str() {
            "place" => self.op_place(&value),
            "depart" => self.op_depart(&value),
            "step" => self.op_step(&value),
            "query" => self.op_query(&value),
            "snapshot" => self.op_snapshot(&value),
            "restore" => self.op_restore(&value),
            "stats" => self.op_stats(),
            "shutdown" => {
                self.shutdown = true;
                Ok(r#"{"ok":true,"shutting_down":true}"#.to_string())
            }
            other => Err(format!(
                "unknown op '{other}' (place | depart | step | query | snapshot | restore | stats | shutdown)"
            )),
        };
        match result {
            Ok(resp) => resp,
            Err(e) => self.fail(e),
        }
    }

    /// Renders an error response and counts it.
    fn fail(&mut self, error: String) -> String {
        self.stats.errors += 1;
        render(&Value::Object(vec![
            ("ok".to_string(), Value::Bool(false)),
            ("error".to_string(), Value::Str(error)),
        ]))
    }

    /// Checks the incremental-surface guards shared by `place` and
    /// `depart`.
    fn guard_incremental(&self) -> Result<(), String> {
        if !self.engine.supports_incremental() {
            return Err("this engine does not support incremental place/depart".to_string());
        }
        Ok(())
    }

    /// One timed placement, with the hot-path response rendered by hand.
    fn place_one(&mut self) -> Result<String, String> {
        self.guard_incremental()?;
        if self.engine.balls() >= u32::MAX as u64 {
            return Err("ball count is at the u32 load bound".to_string());
        }
        let t0 = self.clock.now_nanos();
        let bin = self.engine.place();
        let t1 = self.clock.now_nanos();
        self.stats.place_latency.record(t1.saturating_sub(t0));
        self.stats.placements += 1;
        let load = self.engine.bin_load(bin);
        let balls = self.engine.balls();
        Ok(format!(
            r#"{{"ok":true,"bin":{bin},"load":{load},"balls":{balls}}}"#
        ))
    }

    /// Parses and guards the optional `weight` field: `None` when absent,
    /// otherwise a validated non-zero weight the engine can carry.
    fn opt_weight(&self, req: &Value) -> Result<Option<u32>, String> {
        let Some(w) = opt_u64(req, "weight")? else {
            return Ok(None);
        };
        if w == 0 {
            return Err("weight must be at least 1".to_string());
        }
        let Ok(w) = u32::try_from(w) else {
            return Err("weight exceeds the u32 weight bound".to_string());
        };
        if w != 1 && !self.engine.weighted() {
            return Err(
                "non-unit weight needs a weighted engine (this engine is unit-weight)".to_string(),
            );
        }
        Ok(Some(w))
    }

    /// One timed weighted placement; response shape matches `place_one`.
    fn place_one_weighted(&mut self, weight: u32) -> Result<String, String> {
        self.guard_incremental()?;
        if self.engine.balls() >= u32::MAX as u64 {
            return Err("ball count is at the u32 load bound".to_string());
        }
        let t0 = self.clock.now_nanos();
        let bin = self.engine.place_weighted(weight);
        let t1 = self.clock.now_nanos();
        self.stats.place_latency.record(t1.saturating_sub(t0));
        self.stats.placements += 1;
        let load = self.engine.bin_load(bin);
        let balls = self.engine.balls();
        Ok(format!(
            r#"{{"ok":true,"bin":{bin},"load":{load},"balls":{balls}}}"#
        ))
    }

    fn op_place(&mut self, req: &Value) -> Result<String, String> {
        let weight = self.opt_weight(req)?;
        let count = match (opt_u64(req, "count")?, weight) {
            (None, None) => return self.place_one(),
            (None, Some(w)) => return self.place_one_weighted(w),
            (Some(c), _) => c,
        };
        if count == 0 || count > MAX_PLACE_BATCH {
            return Err(format!("count must be in 1..={MAX_PLACE_BATCH}"));
        }
        self.guard_incremental()?;
        let mut bins = Vec::with_capacity(count.min(4096) as usize);
        for _ in 0..count {
            if self.engine.balls() >= u32::MAX as u64 {
                return Err("ball count reached the u32 load bound mid-batch".to_string());
            }
            let t0 = self.clock.now_nanos();
            let bin = match weight {
                Some(w) => self.engine.place_weighted(w),
                None => self.engine.place(),
            };
            let t1 = self.clock.now_nanos();
            self.stats.place_latency.record(t1.saturating_sub(t0));
            self.stats.placements += 1;
            bins.push(Value::UInt(bin as u64));
        }
        Ok(render(&Value::Object(vec![
            ("ok".to_string(), Value::Bool(true)),
            ("bins".to_string(), Value::Array(bins)),
            ("balls".to_string(), Value::UInt(self.engine.balls())),
        ])))
    }

    fn op_depart(&mut self, req: &Value) -> Result<String, String> {
        self.guard_incremental()?;
        let bin = opt_u64(req, "bin")?.ok_or("depart needs a \"bin\" field")? as usize;
        let removed = self.engine.depart(bin);
        if removed {
            self.stats.departures += 1;
        }
        let load = if bin < self.engine.n() {
            self.engine.bin_load(bin)
        } else {
            0
        };
        Ok(format!(
            r#"{{"ok":true,"removed":{removed},"load":{load},"balls":{}}}"#,
            self.engine.balls()
        ))
    }

    fn op_step(&mut self, req: &Value) -> Result<String, String> {
        let rounds = opt_u64(req, "rounds")?.unwrap_or(1);
        if rounds == 0 || rounds > MAX_STEP_BATCH {
            return Err(format!("rounds must be in 1..={MAX_STEP_BATCH}"));
        }
        let mut moved = 0usize;
        for _ in 0..rounds {
            moved = self.engine.step_batched();
        }
        self.stats.rounds += rounds;
        Ok(format!(
            r#"{{"ok":true,"round":{},"moved":{moved}}}"#,
            self.engine.round()
        ))
    }

    /// The cheap metric surface: never materializes a dense config (the
    /// sparse engine answers in `O(#occupied)`).
    fn op_query(&mut self, req: &Value) -> Result<String, String> {
        let n = self.engine.n();
        let max_load = self.engine.max_load();
        // The legitimacy threshold is defined for n ≥ 2; a 1-bin process is
        // trivially "legitimate" and reports bound 0.
        let (bound, legitimate) = if n >= 2 {
            let b = LegitimacyThreshold::default().bound(n);
            (b, max_load <= b)
        } else {
            (0, true)
        };
        let mut fields = vec![
            ("ok".to_string(), Value::Bool(true)),
            ("n".to_string(), Value::UInt(n as u64)),
            ("round".to_string(), Value::UInt(self.engine.round())),
            ("balls".to_string(), Value::UInt(self.engine.balls())),
            ("max_load".to_string(), Value::UInt(max_load as u64)),
            (
                "empty_bins".to_string(),
                Value::UInt(self.engine.empty_bins() as u64),
            ),
            (
                "nonempty_bins".to_string(),
                Value::UInt(self.engine.nonempty_bins() as u64),
            ),
            ("bound".to_string(), Value::UInt(bound as u64)),
            ("legitimate".to_string(), Value::Bool(legitimate)),
        ];
        // Weighted surface: appended only on weighted engines, so unit
        // sessions keep the pre-weighted response bytes.
        if self.engine.weighted() {
            let total_weight = self.engine.total_weight();
            let weighted_bound = if n >= 2 {
                LegitimacyThreshold::default().weighted_bound(n, total_weight, self.engine.balls())
            } else {
                0
            };
            fields.push(("total_weight".to_string(), Value::UInt(total_weight)));
            fields.push((
                "weighted_max_load".to_string(),
                Value::UInt(self.engine.weighted_max_load()),
            ));
            fields.push(("weighted_bound".to_string(), Value::UInt(weighted_bound)));
            fields.push((
                "capacity_violations".to_string(),
                Value::UInt(self.engine.capacity_violations()),
            ));
        }
        if let Some(bin) = opt_u64(req, "bin")? {
            let bin = bin as usize;
            if bin >= n {
                return Err(format!("bin {bin} out of range 0..{n}"));
            }
            fields.push((
                "load".to_string(),
                Value::UInt(self.engine.bin_load(bin) as u64),
            ));
        }
        Ok(render(&Value::Object(fields)))
    }

    fn op_snapshot(&mut self, req: &Value) -> Result<String, String> {
        let state = self
            .engine
            .snapshot()
            .ok_or("this engine does not support snapshots")?;
        let mut fields = vec![
            ("ok".to_string(), Value::Bool(true)),
            ("state".to_string(), state.serialize()),
        ];
        if let Some(path) = req.get("path").and_then(Value::as_str) {
            let mut text = serde_json::to_string_pretty(&state).map_err(|e| e.to_string())?;
            text.push('\n');
            std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
            fields.push(("path".to_string(), Value::Str(path.to_string())));
        }
        Ok(render(&Value::Object(fields)))
    }

    fn op_restore(&mut self, req: &Value) -> Result<String, String> {
        // `Value::get` yields `Null` for absent keys, so filter it out.
        let state_field = req.get("state").filter(|v| !matches!(v, Value::Null));
        let state = match (state_field, req.get("path").and_then(Value::as_str)) {
            (Some(value), _) => {
                SnapshotState::deserialize(value).map_err(|e| format!("bad state: {}", e.0))?
            }
            (None, Some(path)) => {
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
                serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?
            }
            (None, None) => return Err("restore needs a \"state\" or \"path\" field".to_string()),
        };
        self.engine = restore(&state).map_err(|e| e.0)?;
        Ok(render(&Value::Object(vec![
            ("ok".to_string(), Value::Bool(true)),
            ("engine".to_string(), Value::Str(state.engine.clone())),
            ("n".to_string(), Value::UInt(self.engine.n() as u64)),
            ("round".to_string(), Value::UInt(self.engine.round())),
            ("balls".to_string(), Value::UInt(self.engine.balls())),
        ])))
    }

    fn op_stats(&mut self) -> Result<String, String> {
        let elapsed = self.clock.now_nanos();
        Ok(render(&self.stats.report(elapsed).serialize()))
    }
}

/// Reads an optional unsigned-integer request field.
fn opt_u64(req: &Value, key: &str) -> Result<Option<u64>, String> {
    match req.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => u64::deserialize(v)
            .map(Some)
            .map_err(|e| format!("field \"{key}\": {}", e.0)),
    }
}

/// Renders a value as one compact JSON line.
fn render(value: &Value) -> String {
    serde_json::to_string(value).unwrap_or_else(|e| format!(r#"{{"ok":false,"error":"{e}"}}"#))
}

/// Drives a session over a line stream: one response line per request
/// line, flushed immediately; blank lines are skipped; the loop ends at EOF
/// or after a `shutdown` request is answered.
pub fn serve_lines(
    session: &mut Session,
    reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = session.handle_line(&line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if session.is_shutdown() {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;
    use rbb_core::prelude::*;

    fn session(n: usize, seed: u64) -> Session {
        Session::new(
            Box::new(LoadProcess::legitimate_start(n, seed)),
            Box::new(MockClock::new(1000)),
        )
    }

    #[test]
    fn place_fast_path_and_general_path_agree() {
        let mut a = session(64, 7);
        let mut b = session(64, 7);
        for _ in 0..20 {
            let fast = a.handle_line(r#"{"op":"place"}"#);
            let general = b.handle_line(r#"{"op": "place"}"#);
            assert_eq!(fast, general);
            assert!(fast.starts_with(r#"{"ok":true,"bin":"#), "{fast}");
        }
        assert_eq!(a.stats().placements, 20);
    }

    #[test]
    fn place_batch_returns_bins_and_grows_mass() {
        let mut s = session(64, 7);
        let resp = s.handle_line(r#"{"op":"place","count":5}"#);
        assert!(resp.contains(r#""bins":["#), "{resp}");
        assert!(resp.contains(r#""balls":69"#), "{resp}");
        let over = s.handle_line(r#"{"op":"place","count":0}"#);
        assert!(over.contains(r#""ok":false"#));
    }

    #[test]
    fn depart_reports_removal_and_noop() {
        let mut s = session(16, 3);
        let hit = s.handle_line(r#"{"op":"depart","bin":0}"#);
        assert!(hit.contains(r#""removed":true"#), "{hit}");
        assert!(hit.contains(r#""balls":15"#), "{hit}");
        let miss = s.handle_line(r#"{"op":"depart","bin":0}"#);
        assert!(miss.contains(r#""removed":false"#), "{miss}");
        let out = s.handle_line(r#"{"op":"depart","bin":99}"#);
        assert!(out.contains(r#""removed":false"#), "{out}");
        assert_eq!(s.stats().departures, 1);
    }

    #[test]
    fn step_advances_rounds() {
        let mut s = session(32, 5);
        let resp = s.handle_line(r#"{"op":"step","rounds":10}"#);
        assert!(resp.contains(r#""round":10"#), "{resp}");
        assert_eq!(s.engine().round(), 10);
        assert!(s
            .handle_line(r#"{"op":"step","rounds":0}"#)
            .contains(r#""ok":false"#));
    }

    #[test]
    fn query_reports_the_metric_surface() {
        let mut s = session(64, 9);
        let resp = s.handle_line(r#"{"op":"query"}"#);
        for key in [
            r#""n":64"#,
            r#""balls":64"#,
            r#""max_load":1"#,
            r#""legitimate":true"#,
        ] {
            assert!(resp.contains(key), "missing {key} in {resp}");
        }
        let with_bin = s.handle_line(r#"{"op":"query","bin":3}"#);
        assert!(with_bin.contains(r#""load":1"#), "{with_bin}");
        let bad = s.handle_line(r#"{"op":"query","bin":64}"#);
        assert!(bad.contains(r#""ok":false"#), "{bad}");
    }

    #[test]
    fn snapshot_restore_resumes_identically_mid_session() {
        // Drive session A, snapshot it, keep driving it; drive session B
        // from the restored state with the same remaining requests — every
        // remaining response must be byte-identical.
        let mut a = session(64, 11);
        let prefix = [
            r#"{"op":"place"}"#,
            r#"{"op":"step","rounds":7}"#,
            r#"{"op":"place","count":3}"#,
        ];
        for req in prefix {
            assert!(a.handle_line(req).contains(r#""ok":true"#));
        }
        let snap = a.handle_line(r#"{"op":"snapshot"}"#);
        let state = serde_json::parse_value_str(&snap)
            .unwrap()
            .get("state")
            .cloned()
            .unwrap();
        let mut b = session(8, 1);
        let restore_req = render(&Value::Object(vec![
            ("op".to_string(), Value::Str("restore".to_string())),
            ("state".to_string(), state),
        ]));
        let restored = b.handle_line(&restore_req);
        assert!(restored.contains(r#""ok":true"#), "{restored}");
        let suffix = [
            r#"{"op":"place"}"#,
            r#"{"op":"step","rounds":5}"#,
            r#"{"op":"query"}"#,
            r#"{"op":"place","count":2}"#,
        ];
        for req in suffix {
            assert_eq!(a.handle_line(req), b.handle_line(req), "diverged at {req}");
        }
    }

    #[test]
    fn restore_rejects_corrupt_state() {
        let mut s = session(8, 1);
        let resp = s.handle_line(r#"{"op":"restore","state":{"version":9}}"#);
        assert!(resp.contains(r#""ok":false"#), "{resp}");
        let none = s.handle_line(r#"{"op":"restore"}"#);
        assert!(none.contains(r#""ok":false"#), "{none}");
    }

    #[test]
    fn stats_are_deterministic_under_the_mock_clock() {
        let drive = || {
            let mut s = session(64, 13);
            for _ in 0..50 {
                s.handle_line(r#"{"op":"place"}"#);
            }
            s.handle_line(r#"{"op":"stats"}"#)
        };
        let a = drive();
        assert_eq!(a, drive(), "mock-clock stats must replay byte-identically");
        assert!(a.contains(r#""placements":50"#), "{a}");
        // Each placement spans one 1000ns tick → bucket upper bound 1023.
        assert!(a.contains(r#""place_p50_nanos":1023"#), "{a}");
    }

    fn weighted_session(n: usize, seed: u64) -> Session {
        use rbb_core::weights::{Capacities, Weights};
        let engine = LoadProcess::with_weights(
            Config::one_per_bin(n),
            Xoshiro256pp::seed_from(seed),
            Weights::zipf(n as u64, 1.0, 16),
            Capacities::Uniform(8),
        );
        Session::new(Box::new(engine), Box::new(MockClock::new(1000)))
    }

    #[test]
    fn weighted_place_routes_the_weight_to_the_overlay() {
        let mut s = weighted_session(64, 21);
        let before: u64 = s.engine().total_weight();
        let resp = s.handle_line(r#"{"op":"place","weight":7}"#);
        assert!(resp.starts_with(r#"{"ok":true,"bin":"#), "{resp}");
        assert_eq!(s.engine().total_weight(), before + 7);
        let batch = s.handle_line(r#"{"op":"place","count":3,"weight":5}"#);
        assert!(batch.contains(r#""bins":["#), "{batch}");
        assert_eq!(s.engine().total_weight(), before + 7 + 15);
        // weight 0 and oversized weights are protocol errors, not panics.
        for bad in [
            r#"{"op":"place","weight":0}"#,
            r#"{"op":"place","weight":4294967296}"#,
        ] {
            assert!(s.handle_line(bad).contains(r#""ok":false"#));
        }
    }

    #[test]
    fn unit_engines_reject_non_unit_weights_but_accept_weight_one() {
        let mut s = session(16, 3);
        let heavy = s.handle_line(r#"{"op":"place","weight":2}"#);
        assert!(heavy.contains("needs a weighted engine"), "{heavy}");
        // weight 1 on a unit engine is the same placement as no weight.
        let mut t = session(16, 3);
        let explicit = s.handle_line(r#"{"op":"place","weight":1}"#);
        let implicit = t.handle_line(r#"{"op":"place"}"#);
        assert_eq!(explicit, implicit);
    }

    #[test]
    fn weighted_query_reports_the_weighted_surface() {
        let mut s = weighted_session(64, 9);
        let resp = s.handle_line(r#"{"op":"query"}"#);
        for key in [
            r#""total_weight":"#,
            r#""weighted_max_load":"#,
            r#""weighted_bound":"#,
            r#""capacity_violations":"#,
        ] {
            assert!(resp.contains(key), "missing {key} in {resp}");
        }
        // Unit sessions keep the pre-weighted response bytes.
        let mut u = session(64, 9);
        let unit = u.handle_line(r#"{"op":"query"}"#);
        assert!(!unit.contains("total_weight"), "{unit}");
        assert!(unit.ends_with(r#""legitimate":true}"#), "{unit}");
    }

    #[test]
    fn weighted_snapshot_restore_resumes_identically() {
        let mut a = weighted_session(32, 17);
        for req in [
            r#"{"op":"place","weight":9}"#,
            r#"{"op":"step","rounds":11}"#,
        ] {
            assert!(a.handle_line(req).contains(r#""ok":true"#));
        }
        let snap = a.handle_line(r#"{"op":"snapshot"}"#);
        let state = serde_json::parse_value_str(&snap)
            .unwrap()
            .get("state")
            .cloned()
            .unwrap();
        let mut b = session(8, 1);
        let restore_req = render(&Value::Object(vec![
            ("op".to_string(), Value::Str("restore".to_string())),
            ("state".to_string(), state),
        ]));
        assert!(b.handle_line(&restore_req).contains(r#""ok":true"#));
        for req in [
            r#"{"op":"place","weight":4}"#,
            r#"{"op":"step","rounds":5}"#,
            r#"{"op":"query"}"#,
        ] {
            assert_eq!(a.handle_line(req), b.handle_line(req), "diverged at {req}");
        }
    }

    #[test]
    fn malformed_requests_become_error_responses() {
        let mut s = session(8, 1);
        for req in [
            "not json",
            r#"{"no_op":1}"#,
            r#"{"op":"warp"}"#,
            r#"{"op":"depart"}"#,
            r#"{"op":"place","count":"many"}"#,
        ] {
            let resp = s.handle_line(req);
            assert!(resp.contains(r#""ok":false"#), "{req} -> {resp}");
        }
        assert_eq!(s.stats().errors, 5);
    }

    #[test]
    fn incremental_guard_rejects_non_load_engines() {
        let mut s = Session::new(
            Box::new(Tetris::new(
                Config::one_per_bin(8),
                Xoshiro256pp::seed_from(1),
            )),
            Box::new(MockClock::new(1)),
        );
        assert!(s
            .handle_line(r#"{"op":"place"}"#)
            .contains("does not support incremental"));
        assert!(s
            .handle_line(r#"{"op":"snapshot"}"#)
            .contains("does not support snapshots"));
    }

    #[test]
    fn serve_lines_round_trips_and_honors_shutdown() {
        let mut s = session(16, 2);
        let input = "\n{\"op\":\"place\"}\n{\"op\":\"shutdown\"}\n{\"op\":\"place\"}\n";
        let mut out = Vec::new();
        serve_lines(&mut s, input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "stops after shutdown: {text}");
        assert!(lines[1].contains("shutting_down"));
        assert!(s.is_shutdown());
    }
}
